package fleet

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ftnet/internal/obs"
)

// This file is the HTTP/JSON surface of the Manager API, served by
// cmd/ftnetd and driven by cmd/ftload. It lives next to the Manager so
// both commands (and their tests) share one implementation.
//
// Routes:
//
//	POST   /v1/instances              {"id":...,"spec":{...}}
//	GET    /v1/instances              list instance ids
//	GET    /v1/instances/{id}         instance snapshot
//	DELETE /v1/instances/{id}         drop an instance
//	POST   /v1/instances/{id}/events  {"kind":"fault"|"repair","node":n}
//	POST   /v1/instances/{id}/events:batch  {"events":[{"kind":...,"node":...},...]}
//	GET    /v1/instances/{id}/phi?x=n single lookup (omit x for the slice;
//	                                  the slice gzips when Accept-Encoding allows)
//	GET    /v1/watch?from=n           NDJSON commit stream: catch-up, then live tail
//	POST   /v1/promote                take leadership: bump the term, enable writes
//	POST   /v1/compact                checkpoint state, truncate the journal prefix
//	GET    /v1/stats                  fleet-wide counters (incl. per-shard cache stats)
//	GET    /healthz                   liveness probe
//	GET    /metrics                   Prometheus text exposition
//
// events:batch applies a whole fault burst as one atomic transition:
// either every event in the batch applies and the epoch advances by
// exactly one, or the first invalid event rejects the entire batch and
// the instance is unchanged.
//
// Besides the fleet counters, /metrics exposes the service-level
// histogram families (Prometheus cumulative buckets, seconds):
//
//	ftnet_http_request_seconds{route=...}   per-route request latency
//	ftnet_http_inflight                     requests being served now
//	ftnet_commit_append_seconds             seq assign + WAL buffer stage
//	ftnet_commit_fsync_wait_seconds         group-commit durability wait
//	ftnet_commit_publish_seconds            snapshot publish stage
//	ftnet_commit_fanout_seconds             subscriber fan-out stage
//	ftnet_compaction_pause_seconds          commits-gated compaction pause
//	ftnet_replication_lag_seqs              follower: seqs behind leader
//	ftnet_replication_entry_age_seconds     follower: leader-commit-to-apply age
//
// /v1/watch is excluded from the request-latency histogram (its
// duration is the connection lifetime, not a latency) but counts
// toward ftnet_http_inflight while the stream is open.

// HandlerOptions tunes NewHTTPHandlerOpts.
type HandlerOptions struct {
	// ReadOnly sets the manager's initial write posture: every
	// state-mutating route (create, delete, events) rejects with 403 —
	// the follower posture: its state comes from the leader's commit
	// stream, not from clients. Watch, lookups, stats and compaction
	// (of its own local journal) stay available. The posture is
	// per-request dynamic — POST /v1/promote (or Manager.Promote)
	// flips it off without rewiring the handler.
	ReadOnly bool
	// Follower, when non-nil, adds the replication loop's counters to
	// /v1/stats and /metrics, and routes POST /v1/promote through its
	// stream-draining Promote.
	Follower *Follower
}

// NewHTTPHandler returns the HTTP/JSON API over the given manager.
func NewHTTPHandler(mgr *Manager) http.Handler {
	return NewHTTPHandlerOpts(mgr, HandlerOptions{})
}

// NewHTTPHandlerOpts returns the HTTP/JSON API with explicit options.
func NewHTTPHandlerOpts(mgr *Manager, opts HandlerOptions) http.Handler {
	s := &apiServer{mgr: mgr, opts: opts}
	if opts.ReadOnly {
		mgr.SetReadOnly(true)
	}
	reg := mgr.Metrics()
	reqHist := reg.HistogramVec("ftnet_http_request_seconds",
		"HTTP request latency by route.", "route")
	s.inflight = reg.Gauge("ftnet_http_inflight",
		"HTTP requests currently being served (open watch streams included).")
	// timed resolves the route's histogram once, at wiring time — the
	// per-request cost is two gauge adds and one histogram observe, all
	// allocation-free atomics.
	timed := func(route string, h http.HandlerFunc) http.HandlerFunc {
		hist := reqHist.With(route)
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			s.inflight.Add(1)
			h(w, r)
			s.inflight.Add(-1)
			hist.Observe(time.Since(start))
		}
	}
	// inflightOnly tracks occupancy without a latency sample — the watch
	// stream's "latency" would be its connection lifetime.
	inflightOnly := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s.inflight.Add(1)
			h(w, r)
			s.inflight.Add(-1)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", timed("create", s.mutating(s.createInstance)))
	mux.HandleFunc("GET /v1/instances", timed("list", s.listInstances))
	mux.HandleFunc("GET /v1/instances/{id}", timed("get", s.getInstance))
	mux.HandleFunc("DELETE /v1/instances/{id}", timed("delete", s.mutating(s.deleteInstance)))
	mux.HandleFunc("POST /v1/instances/{id}/events", timed("events", s.mutating(s.postEvent)))
	mux.HandleFunc("POST /v1/instances/{id}/events:batch", timed("events_batch", s.mutating(s.postEventBatch)))
	mux.HandleFunc("GET /v1/instances/{id}/phi", timed("phi", s.getPhi))
	mux.HandleFunc("GET /v1/watch", inflightOnly(s.watch))
	mux.HandleFunc("POST /v1/promote", timed("promote", s.promote))
	mux.HandleFunc("POST /v1/compact", timed("compact", s.compact))
	mux.HandleFunc("GET /v1/ring", timed("ring", s.getRing))
	mux.HandleFunc("POST /v1/ring", timed("ring_set", s.setRing))
	mux.HandleFunc("POST /v1/rebalance", timed("rebalance", s.rebalance))
	mux.HandleFunc("POST /v1/migrate", timed("migrate", s.migrateOut))
	mux.HandleFunc("POST /v1/migrate/stage", timed("migrate_stage", s.migrateStage))
	mux.HandleFunc("POST /v1/migrate/commit", timed("migrate_commit", s.migrateCommit))
	mux.HandleFunc("POST /v1/migrate/abort", timed("migrate_abort", s.migrateAbort))
	mux.HandleFunc("GET /v1/migrate/state", timed("migrate_state", s.migrateState))
	mux.HandleFunc("GET /v1/stats", timed("stats", s.getStats))
	mux.HandleFunc("GET /healthz", timed("healthz", s.healthz))
	mux.HandleFunc("GET /metrics", timed("metrics", s.metrics))
	return mux
}

type apiServer struct {
	mgr      *Manager
	opts     HandlerOptions
	inflight *obs.Gauge
}

// mutating guards a state-changing route against the read-only
// (follower / deposed-leader) posture, consulted per request so a
// promotion flips the whole surface at once. The Manager re-checks on
// every mutation as the authoritative backstop; this wrapper just
// rejects before the body is even parsed.
func (s *apiServer) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.mgr.ReadOnly() {
			msg := "read-only replica: state mutations come from the leader's commit stream"
			if hint := s.mgr.LeaderHint(); hint != "" {
				msg += " (leader: " + hint + ")"
			}
			writeJSON(w, http.StatusForbidden, apiError{Error: msg})
			return
		}
		h(w, r)
	}
}

// PromoteResponse is the body of POST /v1/promote.
type PromoteResponse struct {
	Term      uint64 `json:"term"`                // the new leadership term
	Seq       uint64 `json:"seq"`                 // commit seq of the term-bump fence
	WasLeader bool   `json:"was_leader"`          // already writable; no bump was needed
	Discarded uint64 `json:"discarded,omitempty"` // (follower rejoin path) entries dropped
}

// promote serves POST /v1/promote: make this replica the leader. On a
// follower it drains the in-flight stream first (Follower.Promote);
// on a standalone read-only daemon it just bumps the term and enables
// writes. Promoting a replica that is already the leader is a no-op
// reporting the term in force.
func (s *apiServer) promote(w http.ResponseWriter, r *http.Request) {
	if !s.mgr.ReadOnly() {
		term, termSeq := s.mgr.Term()
		writeJSON(w, http.StatusOK, PromoteResponse{Term: term, Seq: termSeq, WasLeader: true})
		return
	}
	var term uint64
	var err error
	if f := s.opts.Follower; f != nil {
		term, err = f.Promote(r.Context())
	} else {
		term, err = s.mgr.Promote(0)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	_, termSeq := s.mgr.Term()
	writeJSON(w, http.StatusOK, PromoteResponse{Term: term, Seq: termSeq})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// errCode maps a manager error to a status by its category: unknown
// instances are 404, state conflicts (duplicates, double faults,
// exhausted budget) are 409, journal failures (the transition was NOT
// applied) are 503, the rest are 400.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrReadOnly), errors.Is(err, ErrStaleTerm), errors.Is(err, ErrWrongShard):
		return http.StatusForbidden
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	// A wrong-shard rejection carries the owner's URL in a header so
	// clients re-route on the 403 without parsing the message.
	if owner := WrongShardOwner(err); owner != "" {
		w.Header().Set("X-Ftnet-Owner", owner)
	}
	writeJSON(w, errCode(err), apiError{Error: err.Error()})
}

// CreateRequest is the body of POST /v1/instances.
type CreateRequest struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

func (s *apiServer) createInstance(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	in, err := s.mgr.Create(req.ID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, in.Info())
}

func (s *apiServer) listInstances(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"instances": s.mgr.List()})
}

func (s *apiServer) getInstance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.checkOwned(id); err != nil {
		writeError(w, err)
		return
	}
	in, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, errorf(ErrNotFound, "fleet: no instance %q", id))
		return
	}
	if in.staged.Load() {
		writeError(w, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged)", id))
		return
	}
	writeJSON(w, http.StatusOK, in.Info())
}

func (s *apiServer) deleteInstance(w http.ResponseWriter, r *http.Request) {
	ok, err := s.mgr.Delete(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !ok {
		writeError(w, errorf(ErrNotFound, "fleet: no instance %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *apiServer) postEvent(w http.ResponseWriter, r *http.Request) {
	var ev Event
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	res, err := s.mgr.Event(r.PathValue("id"), ev)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// BatchRequest is the body of POST /v1/instances/{id}/events:batch.
type BatchRequest struct {
	Events []Event `json:"events"`
}

func (s *apiServer) postEventBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	if len(req.Events) == 0 {
		writeError(w, fmt.Errorf("empty event batch"))
		return
	}
	res, err := s.mgr.EventBatch(r.PathValue("id"), req.Events)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// PhiResponse is the body of GET /v1/instances/{id}/phi?x=n.
type PhiResponse struct {
	X   int `json:"x"`
	Phi int `json:"phi"`
}

func (s *apiServer) getPhi(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	if xs := q.Get("x"); xs != "" {
		x, err := strconv.Atoi(xs)
		if err != nil {
			writeError(w, fmt.Errorf("bad x %q: %v", xs, err))
			return
		}
		phi, err := s.mgr.Lookup(id, x)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, PhiResponse{X: x, Phi: phi})
		return
	}
	// The dense path bypasses Manager.Lookup, so it carries its own
	// ownership and arrival fences: a migrated-away instance redirects,
	// a staged one answers 503 until its handoff record is durable.
	if err := s.mgr.checkOwned(id); err != nil {
		writeError(w, err)
		return
	}
	in, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, errorf(ErrNotFound, "fleet: no instance %q", id))
		return
	}
	if in.staged.Load() {
		writeError(w, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged)", id))
		return
	}
	// ?from=&count= selects a window of the dense embedding — the
	// JSON-plane twin of the wire plane's LookupBatch. from defaults to
	// 0, count to the rest of the instance; count is clamped to the end,
	// so paginating in fixed steps never errors on the last page.
	from, count, windowed := 0, in.NTarget(), false
	if fs := q.Get("from"); fs != "" {
		v, err := strconv.Atoi(fs)
		if err != nil || v < 0 {
			writeError(w, fmt.Errorf("bad from %q", fs))
			return
		}
		from, windowed = v, true
	}
	if cs := q.Get("count"); cs != "" {
		v, err := strconv.Atoi(cs)
		if err != nil || v < 0 {
			writeError(w, fmt.Errorf("bad count %q", cs))
			return
		}
		count, windowed = v, true
	}
	if from > in.NTarget() {
		writeError(w, fmt.Errorf("from %d beyond %d target nodes", from, in.NTarget()))
		return
	}
	if count > in.NTarget()-from {
		count = in.NTarget() - from
	}
	// The dense endpoint streams the embedding straight from the
	// snapshot iterator: no O(n) slice materialization, no O(n) JSON
	// value tree — a million-node instance answers from O(k) state plus
	// the response buffer, and a window answers from the window alone.
	// When the client advertises gzip the stream is compressed on the
	// fly (same zero-buffer shape, the encoder in the middle): a
	// million near-sequential integers squeeze well.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vary", "Accept-Encoding")
	var out io.Writer = w
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		out = gz
	}
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(out)
	var scratch [20]byte
	if windowed {
		bw.WriteString(`{"from":`)
		bw.Write(strconv.AppendInt(scratch[:0], int64(from), 10))
		bw.WriteString(`,"count":`)
		bw.Write(strconv.AppendInt(scratch[:0], int64(count), 10))
		bw.WriteString(`,"phi":[`)
	} else {
		bw.WriteString(`{"phi":[`)
	}
	emit := func(x, phi int) bool {
		if x > from {
			bw.WriteByte(',')
		}
		bw.Write(strconv.AppendInt(scratch[:0], int64(phi), 10))
		return true
	}
	if windowed {
		in.RangePhiWindow(from, count, emit)
	} else {
		in.RangePhi(emit)
	}
	bw.WriteString("]}\n")
	bw.Flush()
}

// acceptsGzip reports whether the request allows a gzip response body:
// an Accept-Encoding gzip entry whose quality value is not zero
// ("gzip;q=0" is an explicit refusal per RFC 9110).
func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(enc), ";")
		if strings.TrimSpace(coding) != "gzip" {
			continue
		}
		q := strings.TrimSpace(params)
		if v, ok := strings.CutPrefix(q, "q="); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && f == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// StatsResponse is the /v1/stats body: the manager's counters plus,
// in follower mode, the replication loop's, plus the service-metrics
// registry (request/stage/lag histograms with their quantiles) — the
// section loadgen scrapes into BENCH_service.json.
type StatsResponse struct {
	Stats
	Follower *FollowerStats `json:"follower,omitempty"`
	Obs      *obs.Export    `json:"obs,omitempty"`
}

func (s *apiServer) getStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Stats: s.mgr.Stats()}
	if s.opts.Follower != nil {
		fs := s.opts.Follower.Stats()
		resp.Follower = &fs
	}
	e := s.mgr.Metrics().Export()
	resp.Obs = &e
	writeJSON(w, http.StatusOK, resp)
}

func (s *apiServer) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// metrics writes the fleet counters in the Prometheus text exposition
// format, hand-rolled to keep the module dependency-free.
func (s *apiServer) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE ftnet_instances gauge\nftnet_instances %d\n", st.Instances)
	fmt.Fprintf(w, "# TYPE ftnet_events_total counter\nftnet_events_total %d\n", st.Events)
	fmt.Fprintf(w, "# TYPE ftnet_event_batches_total counter\nftnet_event_batches_total %d\n", st.Batches)
	fmt.Fprintf(w, "# TYPE ftnet_events_rejected_total counter\nftnet_events_rejected_total %d\n", st.Rejected)
	fmt.Fprintf(w, "# TYPE ftnet_events_rejected_by_cause_total counter\n")
	fmt.Fprintf(w, "ftnet_events_rejected_by_cause_total{cause=\"budget\"} %d\n", st.RejectedBy.Budget)
	fmt.Fprintf(w, "ftnet_events_rejected_by_cause_total{cause=\"conflict\"} %d\n", st.RejectedBy.Conflict)
	fmt.Fprintf(w, "ftnet_events_rejected_by_cause_total{cause=\"invalid\"} %d\n", st.RejectedBy.Invalid)
	fmt.Fprintf(w, "# TYPE ftnet_lookups_total counter\nftnet_lookups_total %d\n", st.Lookups)
	fmt.Fprintf(w, "# TYPE ftnet_cache_size gauge\nftnet_cache_size %d\n", st.Cache.Size)
	fmt.Fprintf(w, "# TYPE ftnet_cache_hits_total counter\nftnet_cache_hits_total %d\n", st.Cache.Hits)
	fmt.Fprintf(w, "# TYPE ftnet_cache_misses_total counter\nftnet_cache_misses_total %d\n", st.Cache.Misses)
	fmt.Fprintf(w, "# TYPE ftnet_cache_evictions_total counter\nftnet_cache_evictions_total %d\n", st.Cache.Evictions)
	fmt.Fprintf(w, "# TYPE ftnet_journal_enabled gauge\nftnet_journal_enabled %d\n", boolGauge(st.Journal.Enabled))
	fmt.Fprintf(w, "# TYPE ftnet_journal_records_total counter\nftnet_journal_records_total %d\n", st.Journal.Records)
	fmt.Fprintf(w, "# TYPE ftnet_journal_bytes_total counter\nftnet_journal_bytes_total %d\n", st.Journal.Bytes)
	fmt.Fprintf(w, "# TYPE ftnet_journal_syncs_total counter\nftnet_journal_syncs_total %d\n", st.Journal.Syncs)
	fmt.Fprintf(w, "# TYPE ftnet_journal_last_epoch gauge\nftnet_journal_last_epoch %d\n", st.Journal.LastEpoch)
	fmt.Fprintf(w, "# TYPE ftnet_journal_append_failed_total counter\nftnet_journal_append_failed_total %d\n", st.Journal.AppendFailed)
	if rec := st.Journal.Recovery; rec != nil {
		fmt.Fprintf(w, "# TYPE ftnet_journal_recovered_records gauge\nftnet_journal_recovered_records %d\n", rec.Records)
		fmt.Fprintf(w, "# TYPE ftnet_journal_recovery_seconds gauge\nftnet_journal_recovery_seconds %g\n", rec.Seconds)
		fmt.Fprintf(w, "# TYPE ftnet_journal_recovered_torn gauge\nftnet_journal_recovered_torn %d\n", boolGauge(rec.Torn))
	}
	fmt.Fprintf(w, "# TYPE ftnet_read_only gauge\nftnet_read_only %d\n", boolGauge(st.ReadOnly))
	fmt.Fprintf(w, "# TYPE ftnet_rejected_read_only_total counter\nftnet_rejected_read_only_total %d\n", st.RejectedRO)
	fmt.Fprintf(w, "# TYPE ftnet_term gauge\nftnet_term %d\n", st.Commit.Term)
	fmt.Fprintf(w, "# TYPE ftnet_commit_last_seq gauge\nftnet_commit_last_seq %d\n", st.Commit.LastSeq)
	fmt.Fprintf(w, "# TYPE ftnet_commit_base_seq gauge\nftnet_commit_base_seq %d\n", st.Commit.Base)
	fmt.Fprintf(w, "# TYPE ftnet_watch_subscribers gauge\nftnet_watch_subscribers %d\n", st.Commit.Subscribers)
	fmt.Fprintf(w, "# TYPE ftnet_watch_overflows_total counter\nftnet_watch_overflows_total %d\n", st.Commit.Overflows)
	fmt.Fprintf(w, "# TYPE ftnet_compactions_total counter\nftnet_compactions_total %d\n", st.Commit.Compactions)
	fmt.Fprintf(w, "# TYPE ftnet_cache_admission_rejected_total counter\nftnet_cache_admission_rejected_total %d\n", st.Cache.AdmissionRejected)
	if f := s.opts.Follower; f != nil {
		fs := f.Stats()
		fmt.Fprintf(w, "# TYPE ftnet_follower_connected gauge\nftnet_follower_connected %d\n", boolGauge(fs.Connected))
		fmt.Fprintf(w, "# TYPE ftnet_follower_entries_total counter\nftnet_follower_entries_total %d\n", fs.Entries)
		fmt.Fprintf(w, "# TYPE ftnet_follower_reconnects_total counter\nftnet_follower_reconnects_total %d\n", fs.Reconnects)
		fmt.Fprintf(w, "# TYPE ftnet_follower_resyncs_total counter\nftnet_follower_resyncs_total %d\n", fs.Resyncs)
		fmt.Fprintf(w, "# TYPE ftnet_follower_demotions_total counter\nftnet_follower_demotions_total %d\n", fs.Demotions)
		fmt.Fprintf(w, "# TYPE ftnet_follower_discarded_total counter\nftnet_follower_discarded_total %d\n", fs.Discarded)
		fmt.Fprintf(w, "# TYPE ftnet_follower_promoted gauge\nftnet_follower_promoted %d\n", boolGauge(fs.Promoted))
		fmt.Fprintf(w, "# TYPE ftnet_follower_last_seq gauge\nftnet_follower_last_seq %d\n", fs.LastSeq)
	}
	// Each metric family's samples must be contiguous under its # TYPE
	// line, per the text exposition format.
	fmt.Fprintf(w, "# TYPE ftnet_cache_shard_size gauge\n")
	for i, sh := range st.Cache.Shards {
		fmt.Fprintf(w, "ftnet_cache_shard_size{shard=\"%d\"} %d\n", i, sh.Size)
	}
	fmt.Fprintf(w, "# TYPE ftnet_cache_shard_hits_total counter\n")
	for i, sh := range st.Cache.Shards {
		fmt.Fprintf(w, "ftnet_cache_shard_hits_total{shard=\"%d\"} %d\n", i, sh.Hits)
	}
	fmt.Fprintf(w, "# TYPE ftnet_cache_shard_misses_total counter\n")
	for i, sh := range st.Cache.Shards {
		fmt.Fprintf(w, "ftnet_cache_shard_misses_total{shard=\"%d\"} %d\n", i, sh.Misses)
	}
	// The service-level registry: request-latency, commit-stage,
	// replication-lag and compaction-pause families, histograms as
	// cumulative le buckets.
	s.mgr.Metrics().WritePrometheus(w)
}
