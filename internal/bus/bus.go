// Package bus implements Section V of the paper: replacing each node's
// out-block of point-to-point links with a single bus to cut the degree
// of the fault-tolerant architecture almost in half.
//
// In B^k_{2,h}, node i is connected to the block of 2k+2 consecutive
// nodes beginning at (2i - k) mod (2^h + k). The bus architecture gives
// node i one bus that reaches exactly that block; a node's bus-degree is
// the number of buses it touches — its own plus the buses of the nodes
// whose block contains it — which is at most 2k+3.
//
// Buses are used restrictively (node i only ever talks on its own bus,
// to a member of its block), so a faulty bus is handled by declaring its
// OWNER faulty, and the ordinary node-fault machinery takes over.
//
// The implementation generalizes to base m (block size (m-1)(2k+1)+1,
// bus-degree at most (m-1)(2k+1)+2); the paper presents base 2 only for
// simplicity.
package bus

import (
	"fmt"

	"ftnet/internal/ft"
	"ftnet/internal/graph"
)

// Arch is a bus-based fault-tolerant de Bruijn architecture.
type Arch struct {
	P ft.Params
	// members[i] is the block of nodes reachable on node i's bus
	// (excluding i itself unless the block wraps onto it).
	members [][]int
	// busesAt[v] lists the bus owners whose block contains v, NOT
	// counting v's own bus.
	busesAt [][]int
}

// New builds the bus architecture for B^k_{m,h}.
func New(p ft.Params) (*Arch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.NHost()
	a := &Arch{
		P:       p,
		members: make([][]int, s),
		busesAt: make([][]int, s),
	}
	for i := 0; i < s; i++ {
		a.members[i] = ft.OutBlock(i, p)
		for _, v := range a.members[i] {
			a.busesAt[v] = append(a.busesAt[v], i)
		}
	}
	return a, nil
}

// MustNew is New that panics on error.
func MustNew(p ft.Params) *Arch {
	a, err := New(p)
	if err != nil {
		panic(err)
	}
	return a
}

// NumBuses returns the number of buses (one per node).
func (a *Arch) NumBuses() int { return len(a.members) }

// Members returns the nodes reachable on bus i (the out-block of node
// i). The slice must not be modified.
func (a *Arch) Members(i int) []int { return a.members[i] }

// BusesAt returns the owners of the buses that node v can be reached on
// (v's own bus not included). The slice must not be modified.
func (a *Arch) BusesAt(v int) []int { return a.busesAt[v] }

// BusDegree returns the number of buses incident to node v: its own bus
// plus every bus whose block contains v. Duplicates (v inside its own
// block, possible on tiny wrapped instances) are not double counted.
func (a *Arch) BusDegree(v int) int {
	d := 1 // own bus
	for _, owner := range a.busesAt[v] {
		if owner != v {
			d++
		}
	}
	return d
}

// MaxBusDegree returns the architecture's bus degree.
func (a *Arch) MaxBusDegree() int {
	max := 0
	for v := range a.members {
		if d := a.BusDegree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeBound returns the paper's bus-degree bound: 2k+3 for base 2,
// generalized to blockSize+1 = (m-1)(2k+1)+2 for base m.
func (a *Arch) DegreeBound() int { return a.P.BlockSize() + 1 }

// ConnectivityGraph returns the point-to-point graph realized by the
// buses: an edge (i, v) for every v on bus i. By construction this is
// exactly the fault-tolerant graph B^k_{m,h} (buses lose no
// connectivity; they only serialize transfers).
func (a *Arch) ConnectivityGraph() *graph.Graph {
	b := graph.NewBuilder(len(a.members))
	for i, block := range a.members {
		for _, v := range block {
			b.AddEdge(i, v) // self-loops dropped
		}
	}
	return b.Build()
}

// FaultSet combines node faults and bus faults into the node fault set
// used for reconfiguration, per Section V: a faulty bus makes its owner
// faulty (the owner is the only node that transmits on it).
func (a *Arch) FaultSet(nodeFaults, busFaults []int) ([]int, error) {
	for _, b := range busFaults {
		if b < 0 || b >= a.NumBuses() {
			return nil, fmt.Errorf("bus: bus id %d out of range [0,%d)", b, a.NumBuses())
		}
	}
	merged := make(map[int]bool, len(nodeFaults)+len(busFaults))
	for _, v := range nodeFaults {
		if v < 0 || v >= a.P.NHost() {
			return nil, fmt.Errorf("bus: node %d out of range [0,%d)", v, a.P.NHost())
		}
		merged[v] = true
	}
	for _, b := range busFaults {
		merged[b] = true // owner of bus b is node b
	}
	out := make([]int, 0, len(merged))
	for v := range merged {
		out = append(out, v)
	}
	sortInts(out)
	return out, nil
}

// Reconfigure builds the reconfiguration map after node and bus faults.
// The total number of distinct implied node faults must be within the
// spare budget k.
func (a *Arch) Reconfigure(nodeFaults, busFaults []int) (*ft.Mapping, error) {
	faults, err := a.FaultSet(nodeFaults, busFaults)
	if err != nil {
		return nil, err
	}
	return ft.NewMapping(a.P.NTarget(), a.P.NHost(), faults)
}

// EdgeBus returns the bus that carries the reconfigured image of the
// target edge y = X(x, m, r, m^h): the bus owned by phi(x), which by
// Theorems 1/2 reaches phi(y). It validates the claim before returning.
func (a *Arch) EdgeBus(mp *ft.Mapping, x, y, r int) (int, error) {
	if _, err := ft.EdgeWitness(a.P, mp, x, y, r); err != nil {
		return 0, err
	}
	owner := mp.Phi(x)
	target := mp.Phi(y)
	for _, v := range a.members[owner] {
		if v == target {
			return owner, nil
		}
	}
	return 0, fmt.Errorf("bus: phi(y)=%d not on bus of phi(x)=%d", target, owner)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
