package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes should be -1: %v", dist)
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("path 0->3 in C6 = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path uses non-edge: %v", p)
		}
	}
	if got := g.ShortestPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("self path = %v", got)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if b.Build().ShortestPath(0, 2) != nil {
		t.Error("unreachable path should be nil")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Build()
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !cycle(5).IsConnected() {
		t.Error("C5 should be connected")
	}
}

func TestDiameter(t *testing.T) {
	if d := path(5).Diameter(); d != 4 {
		t.Errorf("diam(P5) = %d, want 4", d)
	}
	if d := cycle(6).Diameter(); d != 3 {
		t.Errorf("diam(C6) = %d, want 3", d)
	}
	if d := complete(4).Diameter(); d != 1 {
		t.Errorf("diam(K4) = %d, want 1", d)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if d := b.Build().Diameter(); d != -1 {
		t.Errorf("diam(disconnected) = %d, want -1", d)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	if e := g.Eccentricity(0); e != 4 {
		t.Errorf("ecc(P5,0) = %d", e)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Errorf("ecc(P5,2) = %d", e)
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// Property: on a random connected graph, dist(a,c) <= dist(a,b)+dist(b,c).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(i, rng.Intn(i)) // random tree: connected
		}
		for e := 0; e < n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		a, bb, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		da, db := g.BFS(a), g.BFS(bb)
		return da[c] <= da[bb]+db[c]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortestPathLengthMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(i, rng.Intn(i))
		}
		g := b.Build()
		s, d := rng.Intn(n), rng.Intn(n)
		p := g.ShortestPath(s, d)
		return len(p)-1 == g.BFS(s)[d]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
