//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on the cross-goroutine paths, so the
// alloc-count guards skip themselves under -race.
const raceEnabled = true
