package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ftnet/internal/fleet"
)

// tornServer is a protocol-level fake: it accepts connections, reads
// exactly one request frame each, records its type, and hangs up
// without answering — the worst-case torn connection, where the
// request was fully delivered but the acknowledgement never arrives.
type tornServer struct {
	ln net.Listener

	mu   sync.Mutex
	seen []MsgType
}

func startTornServer(t *testing.T) *tornServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &tornServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go ts.readOne(nc)
		}
	}()
	return ts
}

func (ts *tornServer) readOne(nc net.Conn) {
	defer nc.Close()
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		return
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	if size > MaxFrame {
		return
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(nc, payload); err != nil {
		return
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return
	}
	req, err := DecodeRequest(payload)
	if err != nil {
		return
	}
	ts.mu.Lock()
	ts.seen = append(ts.seen, req.Type)
	ts.mu.Unlock()
}

func (ts *tornServer) count(t MsgType) int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := 0
	for _, s := range ts.seen {
		if s == t {
			n++
		}
	}
	return n
}

// waitCount waits for the fake's async readOne goroutines to record
// their frames.
func (ts *tornServer) waitCount(t *testing.T, mt MsgType, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ts.count(mt) < want {
		if time.Now().After(deadline) {
			t.Fatalf("saw %d %v frames, want %d", ts.count(mt), mt, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireTornConnectionReplaysOnlyReads pins the replay policy: when
// the connection dies after the request was delivered but before any
// response, the client resends idempotent reads exactly once and NEVER
// resends an un-acknowledged ApplyBatch — the burst may have committed
// just before the connection died, and re-applying it would double the
// transition.
func TestWireTornConnectionReplaysOnlyReads(t *testing.T) {
	ts := startTornServer(t)

	c, err := Dial(ts.ln.Addr().String(), Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Lookup("prod", 3)
	if !IsTransport(err) {
		t.Fatalf("Lookup against a torn server: %v, want a transport error", err)
	}
	// Original + one retry on a fresh connection: exactly 2 frames.
	ts.waitCount(t, MsgLookup, 2)
	time.Sleep(20 * time.Millisecond)
	if n := ts.count(MsgLookup); n != 2 {
		t.Fatalf("idempotent Lookup sent %d times, want exactly 2 (one retry)", n)
	}

	_, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 1}})
	if !IsTransport(err) {
		t.Fatalf("ApplyBatch against a torn server: %v, want a transport error", err)
	}
	ts.waitCount(t, MsgApplyBatch, 1)
	time.Sleep(20 * time.Millisecond)
	if n := ts.count(MsgApplyBatch); n != 1 {
		t.Fatalf("un-acked ApplyBatch sent %d times, want exactly 1 (never replayed)", n)
	}
}

// TestWireClientReconnects pins lazy re-dial: after the server restarts
// on the same address, the pooled client recovers without a new Dial —
// reads ride their built-in retry, and a later ApplyBatch (which never
// auto-retries) succeeds on the freshly dialed connection.
func TestWireClientReconnects(t *testing.T) {
	mgr := newTestManager(t, "prod", 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(mgr, ServerOptions{})
	go srv.Serve(ln)

	c := dialTest(t, addr, Options{Conns: 1, Timeout: 2 * time.Second})
	if _, _, err := c.Lookup("prod", 0); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := NewServer(mgr, ServerOptions{})
	go srv2.Serve(ln2)
	defer srv2.Close()

	// The pooled connection is dead; the idempotent retry re-dials and
	// succeeds within this one call.
	if _, _, err := c.Lookup("prod", 0); err != nil {
		t.Fatalf("Lookup after server restart: %v", err)
	}
	if _, err := c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 0}}); err != nil {
		t.Fatalf("ApplyBatch after server restart: %v", err)
	}
}

// TestWireCorruptResponseFailsConnection pins the client's CRC and
// protocol checks: a server answering garbage fails the connection
// with a transport error instead of delivering corrupt data.
func TestWireCorruptResponseFailsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		payload := make([]byte, size)
		io.ReadFull(nc, payload)
		// Answer with a frame whose CRC does not match its payload.
		resp := []byte{Version, byte(MsgLookup), 1, byte(StatusOK), 0, 0}
		var out []byte
		out = binary.LittleEndian.AppendUint32(out, uint32(len(resp)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(resp, castagnoli)+1)
		out = append(out, resp...)
		nc.Write(out)
	}()

	c, err := Dial(ln.Addr().String(), Options{Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 1}})
	if !IsTransport(err) {
		t.Fatalf("corrupt response produced %v, want a transport error", err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error %v does not unwrap to TransportError", err)
	}
}
