package debruijn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectedStructure(t *testing.T) {
	for _, p := range []Params{{2, 3}, {2, 5}, {3, 3}, {4, 2}} {
		d := MustNewDirected(p)
		if d.N() != p.N() {
			t.Fatalf("%v: n=%d", p, d.N())
		}
		for x := 0; x < d.N(); x++ {
			if d.OutDegree(x) != p.M {
				t.Errorf("%v: outdeg(%d)=%d, want m", p, x, d.OutDegree(x))
			}
			if d.InDegree(x) != p.M {
				t.Errorf("%v: indeg(%d)=%d, want m", p, x, d.InDegree(x))
			}
		}
	}
}

func TestDirectedSelfLoops(t *testing.T) {
	// Directed de Bruijn keeps its self-loops: 0 -> 0 and n-1 -> n-1.
	d := MustNewDirected(Params{2, 4})
	if d.Out(0)[0] != 0 {
		t.Error("0 -> 0 self-loop missing")
	}
	if d.Out(15)[1] != 15 {
		t.Error("15 -> 15 self-loop missing")
	}
}

func TestIsEulerian(t *testing.T) {
	for _, p := range []Params{{2, 3}, {2, 6}, {3, 3}, {5, 2}} {
		if !MustNewDirected(p).IsEulerian() {
			t.Errorf("%v should be Eulerian", p)
		}
	}
}

func TestEulerCircuitIsValidAndComplete(t *testing.T) {
	for _, p := range []Params{{2, 3}, {2, 5}, {3, 3}, {4, 2}} {
		d := MustNewDirected(p)
		circuit, err := d.EulerCircuit()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		wantArcs := p.N() * p.M
		if len(circuit) != wantArcs+1 {
			t.Fatalf("%v: circuit length %d, want %d", p, len(circuit), wantArcs+1)
		}
		if circuit[0] != circuit[len(circuit)-1] {
			t.Fatalf("%v: not a circuit", p)
		}
		// Every arc used exactly once.
		used := map[[3]int]int{} // (u, v, multiplicity-slot) -> count
		for i := 0; i+1 < len(circuit); i++ {
			u, v := circuit[i], circuit[i+1]
			// Count available parallel arcs u -> v.
			avail := 0
			for _, w := range d.Out(u) {
				if w == v {
					avail++
				}
			}
			if avail == 0 {
				t.Fatalf("%v: circuit uses non-arc %d->%d", p, u, v)
			}
			used[[3]int{u, v, 0}]++
			if used[[3]int{u, v, 0}] > avail {
				t.Fatalf("%v: arc %d->%d overused", p, u, v)
			}
		}
	}
}

func TestEulerCircuitSpellsDeBruijnSequence(t *testing.T) {
	// An Euler circuit of B_{m,h} yields a de Bruijn sequence of order
	// h+1: every (h+1)-window appears exactly once.
	for _, p := range []Params{{2, 3}, {2, 4}, {3, 2}} {
		d := MustNewDirected(p)
		circuit, err := d.EulerCircuit()
		if err != nil {
			t.Fatal(err)
		}
		seq := SequenceFromEuler(p, circuit)
		order := p.H + 1
		n := p.N() * p.M // m^(h+1)
		if len(seq) != n {
			t.Fatalf("%v: sequence length %d, want %d", p, len(seq), n)
		}
		seen := make([]bool, n)
		for i := range seq {
			w := WindowValue(seq, i, p.M, order)
			if seen[w] {
				t.Fatalf("%v: window %d repeated in Euler-derived sequence", p, w)
			}
			seen[w] = true
		}
	}
}

func TestLineDigraphLaw(t *testing.T) {
	// L(B_{m,h}) = B_{m,h+1}, checked arc-by-arc over random triples.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{M: rng.Intn(3) + 2, H: rng.Intn(3) + 2}
		x := rng.Intn(p.N())
		r1 := rng.Intn(p.M)
		r2 := rng.Intn(p.M)
		return IsLineDigraphStep(p, x, r1, r2) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineDigraphLawExhaustiveSmall(t *testing.T) {
	p := Params{M: 2, H: 3}
	for x := 0; x < p.N(); x++ {
		for r1 := 0; r1 < p.M; r1++ {
			for r2 := 0; r2 < p.M; r2++ {
				if err := IsLineDigraphStep(p, x, r1, r2); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestDirectedInvalidParams(t *testing.T) {
	if _, err := NewDirected(Params{1, 3}); err == nil {
		t.Error("m=1 accepted")
	}
}
