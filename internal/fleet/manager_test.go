package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ftnet/internal/ft"
)

func TestManagerRegistry(t *testing.T) {
	m := NewManager(Options{})
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}

	if _, err := m.Create("", spec); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := m.Create("a", Spec{Kind: "nope"}); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := m.Create("a", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", spec); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("Get(a) missed")
	}
	if _, ok := m.Get("b"); ok {
		t.Error("Get(b) hit")
	}
	if _, err := m.Create("b", Spec{Kind: KindShuffle, H: 4, K: 1}); err != nil {
		t.Fatal(err)
	}
	if ids := m.List(); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("List = %v", ids)
	}
	if ok, err := m.Delete("b"); !ok || err != nil {
		t.Errorf("Delete(b) = %v, %v; want true, nil", ok, err)
	}
	if ok, err := m.Delete("b"); ok || err != nil {
		t.Errorf("second Delete(b) = %v, %v; want false, nil", ok, err)
	}
	if st := m.Stats(); st.Instances != 1 {
		t.Errorf("Instances = %d, want 1", st.Instances)
	}
}

func TestManagerEventAndLookup(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.Event("ghost", Event{EventFault, 0}); err == nil {
		t.Error("event on missing instance accepted")
	}
	if _, err := m.Lookup("ghost", 0); err == nil {
		t.Error("lookup on missing instance accepted")
	}
	if _, err := m.Create("net", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Event("net", Event{EventFault, 3}); err != nil {
		t.Fatal(err)
	}
	phi, err := m.Lookup("net", 3)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 4 {
		t.Errorf("Lookup(net, 3) = %d, want 4", phi)
	}
	if _, err := m.Event("net", Event{EventRepair, 4}); err == nil {
		t.Error("repair of healthy node accepted")
	}
	st := m.Stats()
	if st.Events != 1 || st.Rejected != 1 || st.Lookups != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestManagerEventBatch pins the manager-level burst accounting:
// Events counts individual events, Batches counts transitions, and
// rejections are broken down by cause.
func TestManagerEventBatch(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.EventBatch("ghost", []Event{{EventFault, 0}}); err == nil {
		t.Error("batch on missing instance accepted")
	}
	if _, err := m.Create("net", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := m.EventBatch("net", []Event{{EventFault, 3}, {EventFault, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NumFaults != 2 || res.Applied != 2 {
		t.Fatalf("batch result %+v", res)
	}
	if _, err := m.EventBatch("net", []Event{{EventFault, 3}}); err == nil {
		t.Error("double fault accepted")
	}
	if _, err := m.EventBatch("net", []Event{{EventRepair, 3}, {EventFault, 0}, {EventFault, 1}}); err == nil {
		t.Error("over-budget batch accepted")
	}
	st := m.Stats()
	if st.Events != 2 || st.Batches != 1 {
		t.Errorf("events/batches = %d/%d, want 2/1", st.Events, st.Batches)
	}
	want := RejectedStats{Budget: 1, Conflict: 1}
	if st.RejectedBy != want || st.Rejected != 2 {
		t.Errorf("rejected = %d by %+v, want 2 by %+v", st.Rejected, st.RejectedBy, want)
	}
	// The rejected batches left the instance at epoch 1 with both faults.
	in, _ := m.Get("net")
	if info := in.Info(); info.Epoch != 1 || len(info.Faults) != 2 {
		t.Errorf("instance state after rejected batches: %+v", info)
	}
}

// TestManagerStress hits one shared Manager from many goroutines mixing
// creates, fault/repair events, lookups and stats. Run under -race this
// is the subsystem's concurrency proof. Every lookup answer is checked
// against the paper's invariant 0 <= phi(x) - x <= k (Lemma 1), which
// must hold at every epoch regardless of interleaving.
func TestManagerStress(t *testing.T) {
	const (
		workers   = 8
		instances = 4
		opsPerG   = 400
		k         = 6
	)
	m := NewManager(Options{CacheSize: 64})
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 6, K: k}
	ids := make([]string, instances)
	for i := range ids {
		ids[i] = fmt.Sprintf("net-%d", i)
		if _, err := m.Create(ids[i], spec); err != nil {
			t.Fatal(err)
		}
	}
	nTarget := ft.Params{M: 2, H: 6, K: k}.NTarget()
	nHost := nTarget + k

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerG; op++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(10) {
				case 0, 1, 2: // post a fault (may be rejected: budget/dup)
					m.Event(id, Event{EventFault, rng.Intn(nHost)})
				case 3, 4: // post a repair (may be rejected: healthy)
					m.Event(id, Event{EventRepair, rng.Intn(nHost)})
				case 9: // post an atomic burst (may be rejected whole)
					m.EventBatch(id, []Event{
						{EventFault, rng.Intn(nHost)},
						{EventFault, rng.Intn(nHost)},
					})
				case 5:
					m.Stats()
					if in, ok := m.Get(id); ok {
						in.Info()
					}
				default:
					x := rng.Intn(nTarget)
					phi, err := m.Lookup(id, x)
					if err != nil {
						t.Errorf("Lookup(%s, %d): %v", id, x, err)
						return
					}
					if d := phi - x; d < 0 || d > k {
						t.Errorf("Lookup(%s, %d) = %d: displacement %d outside [0,%d]",
							id, x, phi, d, k)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	st := m.Stats()
	if st.Instances != instances {
		t.Errorf("Instances = %d, want %d", st.Instances, instances)
	}
	if st.Events == 0 || st.Lookups == 0 {
		t.Errorf("stress applied no work: %+v", st)
	}
	// Final state of every instance must equal a one-shot recompute.
	for _, id := range ids {
		in, _ := m.Get(id)
		info := in.Info()
		want, err := ft.NewMapping(nTarget, nHost, info.Faults)
		if err != nil {
			t.Fatalf("%s: invalid final fault set %v: %v", id, info.Faults, err)
		}
		for x := 0; x < nTarget; x++ {
			phi, err := in.Lookup(x)
			if err != nil {
				t.Fatal(err)
			}
			if phi != want.Phi(x) {
				t.Fatalf("%s: final Lookup(%d) = %d, want %d", id, x, phi, want.Phi(x))
			}
		}
	}
}
