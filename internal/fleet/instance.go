package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ftnet/internal/ft"
	"ftnet/internal/shuffle"
)

// Instance is the live state machine for one fault-tolerant network.
// It consumes Fault/Repair events, validates them against the spare
// budget k, and keeps the current reconfiguration map ready so that
// Lookup is a read-lock plus an array index.
//
// The fault set is maintained incrementally — one O(k) sorted insert or
// delete per event — and the full mapping is obtained through the
// shared Cache, so instances that see the same fault pattern share one
// ft.NewMapping computation.
type Instance struct {
	id      string
	spec    Spec
	nTarget int
	nHost   int
	psi     []int // SE->dB embedding for KindShuffle, nil otherwise

	cache *Cache

	mu     sync.RWMutex
	faults []int       // sorted, distinct, len <= spec.K
	cur    *ft.Mapping // mapping for the current fault set (never nil)
	epoch  uint64      // events applied

	rejected atomic.Uint64 // events refused (budget, double fault, ...)
	lookups  atomic.Uint64
}

// newInstance builds the instance in its zero-fault state. The cache
// must be non-nil; it is shared across the manager's instances.
func newInstance(id string, spec Spec, cache *Cache) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{id: id, spec: spec, cache: cache}
	switch spec.Kind {
	case KindDeBruijn:
		p := ft.Params{M: spec.M, H: spec.H, K: spec.K}
		in.nTarget, in.nHost = p.NTarget(), p.NHost()
	case KindShuffle:
		p := ft.SEParams{H: spec.H, K: spec.K}
		in.nTarget, in.nHost = p.NTarget(), p.NHost()
		psi, err := shuffle.EmbedIntoDeBruijn(spec.H)
		if err != nil {
			return nil, err
		}
		in.psi = psi
	}
	m, err := cache.Get(in.nTarget, in.nHost, nil)
	if err != nil {
		return nil, err
	}
	in.cur = m
	return in, nil
}

// ID returns the instance identifier.
func (in *Instance) ID() string { return in.id }

// Spec returns the topology spec the instance was created with.
func (in *Instance) Spec() Spec { return in.spec }

// Apply consumes one fault or repair event. Invalid events — unknown
// kind, node out of range, faulting an already-faulty node, exceeding
// the budget k, repairing a healthy node — are rejected with an error
// and leave the state untouched.
func (in *Instance) Apply(ev Event) (EventResult, error) {
	in.mu.Lock()
	defer in.mu.Unlock()

	if ev.Node < 0 || ev.Node >= in.nHost {
		return in.reject(nil, "node %d out of range [0,%d)", ev.Node, in.nHost)
	}
	i := sort.SearchInts(in.faults, ev.Node)
	present := i < len(in.faults) && in.faults[i] == ev.Node

	switch ev.Kind {
	case EventFault:
		if present {
			return in.reject(ErrConflict, "node %d is already faulty", ev.Node)
		}
		if len(in.faults) >= in.spec.K {
			return in.reject(ErrConflict, "fault budget k=%d exhausted (faults %v)", in.spec.K, in.faults)
		}
		in.faults = append(in.faults, 0)
		copy(in.faults[i+1:], in.faults[i:])
		in.faults[i] = ev.Node
	case EventRepair:
		if !present {
			return in.reject(ErrConflict, "node %d is not faulty", ev.Node)
		}
		in.faults = append(in.faults[:i], in.faults[i+1:]...)
	default:
		return in.reject(nil, "unknown event kind %q", ev.Kind)
	}

	m, err := in.cache.Get(in.nTarget, in.nHost, in.faults)
	if err != nil {
		// Unreachable for a validated event; restore the previous set.
		in.faults = append(in.faults[:0], in.cur.Faults...)
		return EventResult{}, err
	}
	in.cur = m
	in.epoch++
	return EventResult{Epoch: in.epoch, NumFaults: len(in.faults), Budget: in.spec.K}, nil
}

func (in *Instance) reject(category error, format string, args ...any) (EventResult, error) {
	in.rejected.Add(1)
	return EventResult{}, errorf(category, "fleet: instance %s: "+format,
		append([]any{in.id}, args...)...)
}

// Lookup answers "where does target node x run now?": the healthy host
// node currently hosting x. It is safe to call concurrently with Apply.
func (in *Instance) Lookup(x int) (int, error) {
	if x < 0 || x >= in.nTarget {
		return 0, fmt.Errorf("fleet: instance %s: target node %d out of range [0,%d)",
			in.id, x, in.nTarget)
	}
	in.lookups.Add(1)
	if in.psi != nil {
		x = in.psi[x]
	}
	in.mu.RLock()
	phi := in.cur.Phi(x)
	in.mu.RUnlock()
	return phi, nil
}

// Mapping returns the current reconfiguration map over host identities.
// Mappings are immutable, so the result stays valid (for its epoch)
// after later events. Note that for KindShuffle the map is indexed by
// de Bruijn identity; use PhiSlice or Lookup for target-indexed
// answers.
func (in *Instance) Mapping() *ft.Mapping {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.cur
}

// PhiSlice returns the full current embedding indexed by target node:
// PhiSlice()[x] is where target node x runs now. For KindShuffle this
// composes the SE->dB embedding psi, agreeing with Lookup.
func (in *Instance) PhiSlice() []int {
	m := in.Mapping()
	if in.psi == nil {
		return m.PhiSlice()
	}
	out := make([]int, in.nTarget)
	for x := range out {
		out[x] = m.Phi(in.psi[x])
	}
	return out
}

// InstanceInfo is a point-in-time snapshot of an instance.
type InstanceInfo struct {
	ID         string `json:"id"`
	Spec       Spec   `json:"spec"`
	NTarget    int    `json:"n_target"`
	NHost      int    `json:"n_host"`
	Epoch      uint64 `json:"epoch"`
	Faults     []int  `json:"faults"`
	SparesFree int    `json:"spares_free"`
	Rejected   uint64 `json:"rejected_events"`
	Lookups    uint64 `json:"lookups"`
}

// Info returns a consistent snapshot of the instance state.
func (in *Instance) Info() InstanceInfo {
	in.mu.RLock()
	faults := make([]int, len(in.faults))
	copy(faults, in.faults)
	epoch := in.epoch
	in.mu.RUnlock()
	return InstanceInfo{
		ID:         in.id,
		Spec:       in.spec,
		NTarget:    in.nTarget,
		NHost:      in.nHost,
		Epoch:      epoch,
		Faults:     faults,
		SparesFree: in.spec.K - len(faults),
		Rejected:   in.rejected.Load(),
		Lookups:    in.lookups.Load(),
	}
}
