package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/wire"
)

// The restart scenario is the durability probe: storm a journaled
// daemon with atomic fault bursts, kill it mid-storm (SIGKILL — no
// shutdown grace, no final flush beyond the journal's fsync policy),
// restart it, and verify that recovery brought every instance back to
// at least the last epoch any client was acknowledged — and, where the
// client can recompute it, to the exact mapping the paper's
// reconfiguration induces for the recovered fault set.
//
// It is not a Scenario preset: it needs control over the daemon's
// lifecycle, which an HTTP load shape cannot express. cmd/ftload wires
// the hooks to a child process it SIGKILLs; the in-process test wires
// them to an httptest server sharing a journal file.

// RestartConfig drives one kill/recover run. Kill must terminate the
// daemon abruptly; Start must boot a fresh daemon over the same
// journal and return its base URL (usually cfg.Addr again — a test may
// return a new one).
type RestartConfig struct {
	Config
	Kill  func() error
	Start func() (addr string, err error)
	// KillAfterFrac is the fraction of the request budget to complete
	// before the kill (default 0.5 — mid-storm).
	KillAfterFrac float64
	// HealthTimeout bounds the wait for the restarted daemon's /healthz
	// (default 15s).
	HealthTimeout time.Duration
}

// RestartResult reports one kill/recover run.
type RestartResult struct {
	Storm     Result            // the pre-kill storm measurement
	Acked     map[string]uint64 // per-instance max epoch acknowledged before the kill
	Recovered map[string]uint64 // per-instance epoch observed after recovery
	Downtime  time.Duration     // kill to first healthy response
	Verified  int               // instances that passed every recovery check
}

// RunRestart executes the restart scenario. It returns an error if the
// daemon fails to come back, loses an acknowledged epoch, or serves a
// mapping that disagrees with a fresh client-side recomputation.
func RunRestart(cfg RestartConfig) (RestartResult, error) {
	if cfg.Kill == nil || cfg.Start == nil {
		return RestartResult{}, fmt.Errorf("loadgen: restart scenario needs Kill and Start hooks")
	}
	if cfg.Scenario.Batch < 1 {
		cfg.Scenario.Batch = 4
	}
	cfg.Scenario.Name = "restart"
	cfg.Scenario.EventFrac = 1
	if cfg.KillAfterFrac <= 0 || cfg.KillAfterFrac >= 1 {
		cfg.KillAfterFrac = 0.5
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 15 * time.Second
	}
	if err := cfg.Config.Validate(); err != nil {
		return RestartResult{}, err
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "load-restart"
	}
	client := &http.Client{Timeout: 30 * time.Second}
	ids, err := createFleet(client, cfg.Config)
	if err != nil {
		return RestartResult{}, err
	}
	// With RPCAddr set the storm travels the binary RPC plane; the
	// ack-watermark contract is identical (ApplyBatch returns the
	// committed epoch), and the kill manifests as transport errors on
	// the wire client instead of failed POSTs.
	var rc *wire.Client
	if cfg.RPCAddr != "" {
		rc, err = wire.Dial(cfg.RPCAddr, wire.Options{Conns: cfg.RPCConns})
		if err != nil {
			return RestartResult{}, fmt.Errorf("loadgen: rpc plane unreachable: %v", err)
		}
		defer rc.Close()
	}

	// Storm: every worker posts atomic bursts and records the highest
	// epoch the daemon acknowledged per instance. Any worker crossing
	// the kill threshold pulls the trigger exactly once; after the kill,
	// transport errors are the expected symptom and workers drain out.
	acked := make(map[string]*atomic.Uint64, len(ids))
	for _, id := range ids {
		acked[id] = new(atomic.Uint64)
	}
	var (
		ops       atomic.Int64
		stopped   atomic.Bool
		killOnce  sync.Once
		killErr   error
		killedAt  time.Time
		threshold = int64(float64(cfg.Requests) * cfg.KillAfterFrac)
	)
	_, nHost := TargetHostSizes(cfg.Spec)
	perWorker := make([]opStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < n && !stopped.Load(); i++ {
				id := ids[rng.Intn(len(ids))]
				if rc != nil {
					driveBatchAckedRPC(rc, id, rng, nHost, cfg.Scenario.Batch, st, acked[id])
				} else {
					driveBatchAcked(client, cfg.Addr, id, rng, nHost, cfg.Scenario.Batch, st, acked[id])
				}
				if ops.Add(1) >= threshold {
					killOnce.Do(func() {
						stopped.Store(true)
						killedAt = time.Now()
						killErr = cfg.Kill()
					})
				}
			}
		}(w, n)
	}
	wg.Wait()

	res := RestartResult{
		Acked:     make(map[string]uint64, len(ids)),
		Recovered: make(map[string]uint64, len(ids)),
	}
	res.Storm = mergeStats(perWorker, time.Since(start))
	for _, id := range ids {
		res.Acked[id] = acked[id].Load()
	}
	if killErr != nil {
		return res, fmt.Errorf("loadgen: kill hook: %v", killErr)
	}
	if killedAt.IsZero() {
		return res, fmt.Errorf("loadgen: storm finished before the kill threshold (%d ops) was reached", threshold)
	}

	// Restart and wait for recovery to finish (the daemon only serves
	// after its journal replay verifies).
	addr, err := cfg.Start()
	if err != nil {
		return res, fmt.Errorf("loadgen: start hook: %v", err)
	}
	if addr == "" {
		addr = cfg.Addr
	}
	deadline := time.Now().Add(cfg.HealthTimeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("loadgen: daemon not healthy %v after restart", cfg.HealthTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res.Downtime = time.Since(killedAt)

	// Verify every instance against the durability contract.
	for _, id := range ids {
		if err := verifyRecovered(client, addr, id, cfg.Spec, res.Acked[id], &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// verifyRecovered checks one instance after recovery: it must exist,
// its epoch must cover every acknowledged transition, its fault set
// must respect the budget, and (for de Bruijn instances, where the
// client can recompute the map directly) the full phi slice must be
// bit-identical to ft.NewMapping over the recovered fault set.
func verifyRecovered(client *http.Client, addr, id string, spec fleet.Spec, acked uint64, res *RestartResult) error {
	resp, err := client.Get(addr + "/v1/instances/" + id)
	if err != nil {
		return fmt.Errorf("loadgen: verify %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: verify %s: instance lost (status %d)", id, resp.StatusCode)
	}
	var info fleet.InstanceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fmt.Errorf("loadgen: verify %s: %v", id, err)
	}
	res.Recovered[id] = info.Epoch
	if info.Epoch < acked {
		return fmt.Errorf("loadgen: %s recovered to epoch %d, below acknowledged epoch %d — durability violated",
			id, info.Epoch, acked)
	}
	if len(info.Faults) > spec.K {
		return fmt.Errorf("loadgen: %s recovered %d faults over budget k=%d", id, len(info.Faults), spec.K)
	}
	if spec.Kind == fleet.KindDeBruijn {
		want, err := ft.NewMapping(info.NTarget, info.NHost, info.Faults)
		if err != nil {
			return fmt.Errorf("loadgen: %s recovered an invalid fault set %v: %v", id, info.Faults, err)
		}
		resp, err := client.Get(addr + "/v1/instances/" + id + "/phi")
		if err != nil {
			return fmt.Errorf("loadgen: verify %s: %v", id, err)
		}
		var full struct{ Phi []int }
		err = json.NewDecoder(resp.Body).Decode(&full)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("loadgen: verify %s: %v", id, err)
		}
		if len(full.Phi) != info.NTarget {
			return fmt.Errorf("loadgen: %s phi slice has %d entries, want %d", id, len(full.Phi), info.NTarget)
		}
		for x, phi := range full.Phi {
			if phi != want.Phi(x) {
				return fmt.Errorf("loadgen: %s phi(%d) = %d after recovery, recomputation says %d",
					id, x, phi, want.Phi(x))
			}
		}
	}
	res.Verified++
	return nil
}

// driveBatchAcked posts one atomic rack burst (the driveEvents shape)
// and records the acknowledged epoch. Transport errors are expected
// once the daemon is killed, so they are counted but not fatal.
func driveBatchAcked(client *http.Client, addr, id string, rng *rand.Rand, nHost, batch int, st *opStats, acked *atomic.Uint64) {
	events := makeEvents(rng, nHost, batch)
	body, _ := json.Marshal(fleet.BatchRequest{Events: events})
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/instances/"+id+"/events:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		st.transport++
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var evr fleet.EventResult
		if err := json.NewDecoder(resp.Body).Decode(&evr); err != nil {
			st.errors++
			return
		}
		ackMax(acked, evr.Epoch)
		st.batches++
		st.events += batch
		st.eventLats = append(st.eventLats, time.Since(t0))
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusBadRequest:
		io.Copy(io.Discard, resp.Body)
		st.rejected++
		st.eventLats = append(st.eventLats, time.Since(t0))
	default:
		io.Copy(io.Discard, resp.Body)
		st.errors++
	}
}

// driveBatchAckedRPC is driveBatchAcked over the wire plane. An
// ApplyBatch that dies in transport is NOT acked and NOT replayed (the
// client guarantees the latter), which is exactly the durability
// contract the verification phase checks: only confirmed epochs must
// survive.
func driveBatchAckedRPC(rc *wire.Client, id string, rng *rand.Rand, nHost, batch int, st *opStats, acked *atomic.Uint64) {
	events := makeEvents(rng, nHost, batch)
	t0 := time.Now()
	res, err := rc.ApplyBatch(id, events)
	switch {
	case err == nil:
		ackMax(acked, res.Epoch)
		st.batches++
		st.events += batch
		st.eventLats = append(st.eventLats, time.Since(t0))
	case wire.IsTransport(err):
		st.transport++
	case rejectedByStateMachine(err):
		st.rejected++
		st.eventLats = append(st.eventLats, time.Since(t0))
	default:
		st.errors++
	}
}

// ackMax CAS-maxes the ack watermark: any epoch the daemon confirmed
// must survive the kill.
func ackMax(acked *atomic.Uint64, epoch uint64) {
	for {
		cur := acked.Load()
		if epoch <= cur || acked.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// mergeStats folds per-worker measurements into one Result (the tail
// of Run, shared with the restart storm).
func mergeStats(perWorker []opStats, elapsed time.Duration) Result {
	total := Result{Elapsed: elapsed}
	for i := range perWorker {
		st := &perWorker[i]
		total.Lookups += st.lookups
		total.Events += st.events
		total.Batches += st.batches
		total.Rejected += st.rejected
		total.Errors += st.errors
		total.Transport += st.transport
		total.Latencies = append(total.Latencies, st.eventLats...)
		total.Latencies = append(total.Latencies, st.lookupLats...)
		total.LookupLatencies = append(total.LookupLatencies, st.lookupLats...)
	}
	sortDurations(total.Latencies)
	sortDurations(total.LookupLatencies)
	return total
}
