package graph

import (
	"fmt"
	"sort"
)

// Induced returns the subgraph of g induced by the node set w, together
// with the mapping from new indices to the original node ids
// (newToOld[i] is the original id of new node i). w may be in any order
// and must not contain duplicates or out-of-range nodes.
func (g *Graph) Induced(w []int) (*Graph, []int, error) {
	newToOld := make([]int, len(w))
	copy(newToOld, w)
	sort.Ints(newToOld)
	oldToNew := make(map[int]int, len(w))
	for i, v := range newToOld {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph.Induced: node %d out of range [0,%d)", v, g.n)
		}
		if i > 0 && newToOld[i-1] == v {
			return nil, nil, fmt.Errorf("graph.Induced: duplicate node %d", v)
		}
		oldToNew[v] = i
	}
	b := NewBuilder(len(w))
	for i, old := range newToOld {
		for _, nbr := range g.Neighbors(old) {
			if j, ok := oldToNew[nbr]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), newToOld, nil
}

// InducedByExclusion returns the subgraph induced by all nodes except
// the (sorted or unsorted) set excluded, along with the new-to-old map.
func (g *Graph) InducedByExclusion(excluded []int) (*Graph, []int, error) {
	drop := make(map[int]struct{}, len(excluded))
	for _, v := range excluded {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph.InducedByExclusion: node %d out of range [0,%d)", v, g.n)
		}
		drop[v] = struct{}{}
	}
	keep := make([]int, 0, g.n-len(drop))
	for v := 0; v < g.n; v++ {
		if _, gone := drop[v]; !gone {
			keep = append(keep, v)
		}
	}
	return g.Induced(keep)
}

// Relabel returns a copy of g with node u renamed perm[u]. perm must be
// a permutation of [0, N).
func (g *Graph) Relabel(perm []int) (*Graph, error) {
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph.Relabel: permutation length %d != n %d", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, v := range perm {
		if v < 0 || v >= g.n || seen[v] {
			return nil, fmt.Errorf("graph.Relabel: not a permutation (value %d)", v)
		}
		seen[v] = true
	}
	b := NewBuilder(g.n)
	g.EachEdge(func(u, v int) bool {
		b.AddEdge(perm[u], perm[v])
		return true
	})
	return b.Build(), nil
}

// Union returns the graph on max(g.N, h.N) nodes whose edge set is the
// union of the two edge sets.
func Union(g, h *Graph) *Graph {
	n := g.n
	if h.n > n {
		n = h.n
	}
	b := NewBuilder(n)
	g.EachEdge(func(u, v int) bool { b.AddEdge(u, v); return true })
	h.EachEdge(func(u, v int) bool { b.AddEdge(u, v); return true })
	return b.Build()
}

// IsSubgraphOf reports whether every edge of g is also an edge of h
// (same node numbering; h must have at least as many nodes).
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n > h.n {
		return false
	}
	ok := true
	g.EachEdge(func(u, v int) bool {
		if !h.HasEdge(u, v) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// CheckEmbedding verifies that phi is an embedding of pattern into host
// in the paper's sense: phi must be 1-to-1 and every pattern edge (u,v)
// must map to a host edge (phi[u], phi[v]). It returns nil on success,
// or an error naming the first violated requirement.
func CheckEmbedding(pattern, host *Graph, phi []int) error {
	if len(phi) != pattern.N() {
		return fmt.Errorf("embedding: length %d != pattern size %d", len(phi), pattern.N())
	}
	seen := make(map[int]int, len(phi))
	for u, img := range phi {
		if img < 0 || img >= host.N() {
			return fmt.Errorf("embedding: phi[%d]=%d out of host range [0,%d)", u, img, host.N())
		}
		if prev, dup := seen[img]; dup {
			return fmt.Errorf("embedding: phi not injective: phi[%d]=phi[%d]=%d", prev, u, img)
		}
		seen[img] = u
	}
	var bad error
	pattern.EachEdge(func(u, v int) bool {
		if !host.HasEdge(phi[u], phi[v]) {
			bad = fmt.Errorf("embedding: pattern edge (%d,%d) maps to non-edge (%d,%d)", u, v, phi[u], phi[v])
			return false
		}
		return true
	})
	return bad
}
