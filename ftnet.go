// Package ftnet is a library of fault-tolerant de Bruijn and
// shuffle-exchange interconnection networks, reproducing Bruck, Cypher
// and Ho, "Fault-Tolerant de Bruijn and Shuffle-Exchange Networks"
// (ICPP 1992 / IEEE TPDS 1994).
//
// Given a target topology with N nodes and a fault budget k, the library
// constructs a host graph with exactly N+k nodes — the minimum possible —
// that is guaranteed to contain a fault-free copy of the target after
// ANY k node faults, plus the reconfiguration map that locates the copy.
//
// # Quick start
//
//	// A 16-node base-2 de Bruijn machine that survives any 2 faults.
//	net, err := ftnet.NewDeBruijn2(4, 2)        // h=4, k=2: 18 nodes, degree <= 12
//	m, err := net.Reconfigure([]int{3, 11})     // any <= 2 faults
//	phi := m.PhiSlice()                          // target node x runs on phi[x]
//
// The package is a facade over the internal implementation packages;
// everything reachable from here is verified by the repository's test
// suite, including exhaustive fault-set enumeration for small sizes.
package ftnet

import (
	"io"

	"ftnet/internal/bus"
	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/shuffle"
	"ftnet/internal/verify"
)

// Graph is the immutable simple undirected graph type used throughout.
type Graph = graph.Graph

// Mapping is a reconfiguration map assigning target nodes to healthy
// host nodes.
type Mapping = ft.Mapping

// BusArch is the Section-V bus implementation of a fault-tolerant
// de Bruijn network.
type BusArch = bus.Arch

// DeBruijnNet is a fault-tolerant de Bruijn network: the target graph
// B_{m,h}, its host B^k_{m,h}, and the reconfiguration machinery.
type DeBruijnNet struct {
	P      ft.Params
	Target *Graph // B_{m,h}
	Host   *Graph // B^k_{m,h}: m^h + k nodes, degree <= 4(m-1)k + 2m
}

// NewDeBruijn returns the fault-tolerant base-m de Bruijn network for
// h-digit addresses tolerating k faults (m >= 2, h >= 3, k >= 0).
func NewDeBruijn(m, h, k int) (*DeBruijnNet, error) {
	p := ft.Params{M: m, H: h, K: k}
	host, err := ft.New(p)
	if err != nil {
		return nil, err
	}
	target, err := debruijn.New(p.Target())
	if err != nil {
		return nil, err
	}
	return &DeBruijnNet{P: p, Target: target, Host: host}, nil
}

// NewDeBruijn2 is NewDeBruijn with base 2 (degree bound 4k+4).
func NewDeBruijn2(h, k int) (*DeBruijnNet, error) { return NewDeBruijn(2, h, k) }

// Reconfigure computes the embedding of the target into the healthy part
// of the host for the given faulty host nodes (at most k of them).
func (n *DeBruijnNet) Reconfigure(faults []int) (*Mapping, error) {
	return ft.NewMapping(n.P.NTarget(), n.P.NHost(), faults)
}

// VerifyExhaustive proves (k,G)-tolerance on this instance by
// enumerating every possible fault set. Feasible for small sizes; for
// large instances use VerifyRandomized.
func (n *DeBruijnNet) VerifyExhaustive() error {
	rep := verify.Exhaustive(n.Target, n.Host, n.P.K, n.mapper())
	if !rep.Ok() {
		return rep.First
	}
	return nil
}

// VerifyRandomized samples trials fault sets from each standard fault
// model (random, block, spares, spread, max-degree) and checks them.
func (n *DeBruijnNet) VerifyRandomized(trials int, seed int64) error {
	rep := verify.Randomized(n.Target, n.Host, n.P.K, n.mapper(), trials, seed, nil)
	if !rep.Ok() {
		return rep.First
	}
	return nil
}

func (n *DeBruijnNet) mapper() verify.Mapper {
	return func(faults, buf []int) ([]int, error) {
		m, err := ft.NewMapping(n.P.NTarget(), n.P.NHost(), faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
}

// Buses returns the Section-V bus implementation of this network
// (bus-degree at most 2k+3 for base 2).
func (n *DeBruijnNet) Buses() (*BusArch, error) { return bus.New(n.P) }

// WriteTargetDOT and WriteHostDOT render the graphs in Graphviz format.
func (n *DeBruijnNet) WriteTargetDOT(w io.Writer) error {
	debruijn.ApplyLabels(n.Target, n.P.Target())
	return n.Target.WriteDOT(w, graph.DOTOptions{Name: "target"})
}

// WriteHostDOT renders the host graph in Graphviz format.
func (n *DeBruijnNet) WriteHostDOT(w io.Writer) error {
	return n.Host.WriteDOT(w, graph.DOTOptions{Name: "host"})
}

// ShuffleExchangeNet is a fault-tolerant shuffle-exchange network. The
// host is B^k_{2,h} (degree <= 4k+4); SE node x reaches its host slot
// through the precomputed same-size embedding Psi of SE_h into B_{2,h}.
type ShuffleExchangeNet struct {
	P      ft.SEParams
	Target *Graph // SE_h
	Host   *Graph // B^k_{2,h}
	Psi    []int  // embedding of SE_h into B_{2,h}
}

// NewShuffleExchange returns the fault-tolerant shuffle-exchange network
// for h-bit addresses tolerating k faults (h >= 3, k >= 0).
func NewShuffleExchange(h, k int) (*ShuffleExchangeNet, error) {
	p := ft.SEParams{H: h, K: k}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		return nil, err
	}
	target, err := shuffle.New(shuffle.Params{H: h})
	if err != nil {
		return nil, err
	}
	return &ShuffleExchangeNet{P: p, Target: target, Host: host, Psi: psi}, nil
}

// Reconfigure returns, for the given faulty host nodes, the slice
// mapping each SE node to its healthy host node.
func (n *ShuffleExchangeNet) Reconfigure(faults []int) ([]int, error) {
	return ft.SEMapViaDB(n.P, n.Psi, faults)
}

// VerifyRandomized samples fault sets and checks the SE embedding
// survives each of them.
func (n *ShuffleExchangeNet) VerifyRandomized(trials int, seed int64) error {
	mapper := func(faults, _ []int) ([]int, error) { return n.Reconfigure(faults) }
	rep := verify.Randomized(n.Target, n.Host, n.P.K, mapper, trials, seed, nil)
	if !rep.Ok() {
		return rep.First
	}
	return nil
}
