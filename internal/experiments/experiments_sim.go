package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ftnet/internal/ascend"
	"ftnet/internal/baseline"
	"ftnet/internal/bus"
	"ftnet/internal/ft"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
	"ftnet/internal/sim"
)

func newBusArch(p ft.Params) (*bus.Arch, error) { return bus.New(p) }

// T4 sweeps the bus architecture: measured bus degree vs 2k+3, the
// point-to-point degree it replaces, and a bus-fault reconfiguration
// check.
func T4(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tnodes\tbus degree\tbound 2k+3\tp2p degree 4k+4\tbus-fault reconfig")
	for h := 3; h <= 8; h++ {
		for k := 0; k <= 6; k++ {
			p := ft.Params{M: 2, H: h, K: k}
			a, err := bus.New(p)
			if err != nil {
				return err
			}
			status := "n/a (k=0)"
			if k >= 1 {
				// Fail one bus; owner becomes faulty; embedding must survive.
				mp, err := a.Reconfigure(nil, []int{h % p.NHost()})
				if err != nil {
					return fmt.Errorf("%v: %w", p, err)
				}
				if err := ft.DeltaMonotone(mp); err != nil {
					return fmt.Errorf("%v: %w", p, err)
				}
				status = "ok"
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				h, k, p.NHost(), a.MaxBusDegree(), 2*k+3, 4*k+4, status)
		}
	}
	return tw.Flush()
}

// T5 regenerates the Section I comparison: this paper's constructions
// versus the Samatham-Pradhan bigger-de-Bruijn scheme, for base 2 and
// base m.
func T5(w io.Writer) error {
	fmt.Fprintln(w, "base 2 (target B_{2,h}, N = 2^h):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tk\tours: nodes\tours: degree\tS-P: nodes\tS-P: degree (cited)")
	for h := 3; h <= 12; h++ {
		for _, k := range []int{1, 2, 4, 6} {
			our := ft.Params{M: 2, H: h, K: k}
			sp := baseline.Params{M: 2, H: h, K: k}
			spNodes := "overflow"
			if sp.Validate() == nil {
				spNodes = fmt.Sprintf("%d", sp.NHost())
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\t%d\n",
				our.NTarget(), k, our.NHost(), 4*k+4, spNodes, 4*k+2)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nbase m (target B_{m,3}):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\tN\tk\tours: nodes\tours: degree 4(m-1)k+2m\tS-P: nodes N(k+1)^h\tS-P: degree 2mk+2")
	for _, m := range []int{2, 3, 4, 5} {
		for _, k := range []int{1, 2, 4} {
			our := ft.Params{M: m, H: 3, K: k}
			sp := baseline.Params{M: m, H: 3, K: k}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				m, our.NTarget(), k, our.NHost(), our.DegreeBound(), sp.NHost(), sp.CitedDegree())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Executable spot-check: both schemes really survive k faults on a
	// concrete instance, at their respective node costs.
	ourP := ft.Params{M: 2, H: 3, K: 2}
	spP := baseline.Params{M: 2, H: 3, K: 2}
	rng := stableRng()
	faultsOur := num.RandomSubset(rng, ourP.NHost(), ourP.K)
	if _, err := ft.NewMapping(ourP.NTarget(), ourP.NHost(), faultsOur); err != nil {
		return err
	}
	faultsSP := num.RandomSubset(rng, spP.NHost(), spP.K)
	if _, err := baseline.Reconfigure(spP, faultsSP); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nspot check, N=8, k=2: ours reconfigures with %d nodes; Samatham-Pradhan needs %d nodes\n",
		ourP.NHost(), spP.NHost())
	return nil
}

// S1 quantifies the paper's motivation: an Ascend (global sum) workload
// on (a) the healthy machine, (b) the unprotected machine with one dead
// node, (c) the fault-tolerant machine reconfigured around k faults.
func S1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\thealthy cycles\tfaulted unprotected\treconfigured FT cycles")
	rng := stableRng()
	for h := 4; h <= 8; h++ {
		n := 1 << h
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		se := shuffle.MustNew(shuffle.Params{H: h})

		healthy, err := ascend.RunSE(h, ascend.NewHealthy(se), vals, ascend.Sum)
		if err != nil {
			return err
		}

		// One dead node on the unprotected machine.
		broken := ascend.NewHealthy(se)
		broken.Dead[n/3] = true
		var unprotected string
		if _, err := ascend.RunSE(h, broken, vals, ascend.Sum); err != nil {
			frac, ferr := ascend.SurvivingFraction(h, broken, vals, ascend.Sum)
			if ferr != nil {
				return ferr
			}
			unprotected = fmt.Sprintf("FAILS (%.0f%% of results salvageable)", 100*frac)
		} else {
			unprotected = "unexpectedly ok"
		}

		for _, k := range []int{1, 3} {
			p := ft.SEParams{H: h, K: k}
			host, psi, err := ft.NewSEViaDB(p)
			if err != nil {
				return err
			}
			faults := num.RandomSubset(rng, p.NHost(), k)
			loc, err := ft.SEMapViaDB(p, psi, faults)
			if err != nil {
				return err
			}
			dead := make([]bool, p.NHost())
			for _, f := range faults {
				dead[f] = true
			}
			res, err := ascend.RunSE(h, &ascend.Host{G: host, Loc: loc, Dead: dead}, vals, ascend.Sum)
			if err != nil {
				return fmt.Errorf("h=%d k=%d: %w", h, k, err)
			}
			want := int64(n) * int64(n+1) / 2
			for _, v := range res.Values {
				if v != want {
					return fmt.Errorf("h=%d k=%d: wrong sum %d", h, k, v)
				}
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\n", h, k, healthy.Cycles, unprotected, res.Cycles)
		}
	}
	return tw.Flush()
}

// S2 reproduces the Section V slowdown argument on the simulator: each
// node bursts one value to two successors; with 2 injection ports the
// bus machine takes ~2x the cycles, with 1 port the two are equal.
func S2(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tp2p 2-port\tbus 2-port\tp2p 1-port\tbus 1-port")
	for h := 3; h <= 6; h++ {
		for _, k := range []int{0, 1, 2} {
			p := ft.Params{M: 2, H: h, K: k}
			arch, err := bus.New(p)
			if err != nil {
				return err
			}
			g := arch.ConnectivityGraph()
			var hops [][2]int
			for i := 0; i < g.N(); i++ {
				seen := 0
				for _, v := range arch.Members(i) {
					if v != i && seen < 2 {
						hops = append(hops, [2]int{i, v})
						seen++
					}
				}
			}
			cycles := func(m *sim.Machine) (int, error) {
				st, err := sim.Run(m, sim.NeighborBurst(hops), 1000)
				if err != nil {
					return 0, err
				}
				if st.Stalled || st.Delivered != len(hops) {
					return 0, fmt.Errorf("h=%d k=%d: %v", h, k, st)
				}
				return st.Cycles, nil
			}
			p2p2, err := cycles(sim.NewPointToPoint(g, 2))
			if err != nil {
				return err
			}
			bus2, err := cycles(sim.NewBusMachine(arch, 2))
			if err != nil {
				return err
			}
			p2p1, err := cycles(sim.NewPointToPoint(g, 1))
			if err != nil {
				return err
			}
			bus1, err := cycles(sim.NewBusMachine(arch, 1))
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n", h, k, p2p2, bus2, p2p1, bus1)
		}
	}
	return tw.Flush()
}
