package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/journal"
)

// bootDaemon assembles the in-process analogue of one ftnetd: a
// journaled manager, optionally a follower loop, and an httptest
// server over the real handler.
func bootDaemon(t *testing.T, path, followURL string) (*fleet.Manager, *fleet.Follower, *httptest.Server, context.CancelFunc) {
	t.Helper()
	mgr := fleet.NewManager(fleet.Options{})
	if _, err := mgr.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Create(path, journal.Options{Sync: journal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetJournal(jw)
	var f *fleet.Follower
	ctx, cancel := context.WithCancel(context.Background())
	if followURL != "" {
		f, err = fleet.NewFollower(mgr, followURL, fleet.FollowerOptions{
			Heartbeat:    50 * time.Millisecond,
			StallTimeout: 2 * time.Second,
			Backoff:      20 * time.Millisecond,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		go f.Run(ctx)
	}
	srv := httptest.NewServer(fleet.NewHTTPHandlerOpts(mgr, fleet.HandlerOptions{
		ReadOnly: followURL != "",
		Follower: f,
	}))
	t.Cleanup(func() { cancel(); srv.Close() })
	return mgr, f, srv, cancel
}

// TestRunFailoverInProcess exercises the partition-torture scenario
// without child processes: the partition cancels the follower's
// replication context, the kill closes the leader's server and
// abandons its manager (SyncAlways — the SIGKILL contract), promotion
// travels POST /v1/promote, and the deposed leader reboots from the
// same journal file as a follower of the new leader. The scenario's
// own acceptance checks — demotion observed, tail discarded, 403 on
// direct writes (zero stale-term writes), bit-identical convergence —
// all run inside RunFailover.
func TestRunFailoverInProcess(t *testing.T) {
	dir := t.TempDir()
	leaderWAL := filepath.Join(dir, "leader.wal")
	followerWAL := filepath.Join(dir, "follower.wal")

	_, _, leaderSrv, _ := bootDaemon(t, leaderWAL, "")
	_, _, followerSrv, followerCancel := bootDaemon(t, followerWAL, leaderSrv.URL)

	var rejoinSrv *httptest.Server
	res, err := RunFailover(FailoverConfig{
		Config: Config{
			Addr:      leaderSrv.URL,
			Instances: 3,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
			Workers:   4,
			Requests:  600,
			Scenario:  Scenario{Batch: 4},
			Seed:      11,
		},
		FollowerAddr: followerSrv.URL,
		Partition: func() error {
			followerCancel() // the watch stream dies; the leader keeps serving
			return nil
		},
		KillLeader: func() error {
			leaderSrv.Close() // in-flight handlers drain; manager and writer abandoned
			return nil
		},
		RestartOld: func() (string, error) {
			_, _, rejoinSrv, _ = bootDaemon(t, leaderWAL, followerSrv.URL)
			return rejoinSrv.URL, nil
		},
	})
	if err != nil {
		t.Fatalf("RunFailover: %v (result %+v)", err, res)
	}
	if res.Term == 0 {
		t.Error("promotion reported term 0")
	}
	if res.DivergenceWindow <= 0 {
		t.Errorf("divergence window %v, want > 0", res.DivergenceWindow)
	}
	if res.FailoverDowntime <= 0 {
		t.Errorf("failover downtime %v, want > 0", res.FailoverDowntime)
	}
	if res.Demotions != 1 {
		t.Errorf("demotions = %d, want 1", res.Demotions)
	}
	if res.Discarded == 0 {
		t.Error("no discarded entries: the deposed leader had no unreplicated tail to drop")
	}
	if res.Converged != 3 {
		t.Errorf("converged %d/3 instances", res.Converged)
	}
	if res.Storm.Batches == 0 {
		t.Error("storm acknowledged no transitions")
	}

	// The artifact families CI gates on.
	art := BuildServiceArtifact("partition-torture", nil, nil, nil)
	AppendFailover(&art, res)
	families := map[string]bool{}
	for _, b := range art.Benchmarks {
		families[b.Family] = true
	}
	if !families["failover_downtime"] || !families["divergence_window"] {
		t.Errorf("artifact families %v missing failover_downtime/divergence_window", families)
	}
}

// TestRunFailoverNeedsHooks pins the configuration contract.
func TestRunFailoverNeedsHooks(t *testing.T) {
	if _, err := RunFailover(FailoverConfig{}); err == nil {
		t.Error("RunFailover accepted a config without hooks")
	}
}
