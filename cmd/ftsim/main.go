// Command ftsim runs communication workloads on simulated machines
// built from the repository's topologies: healthy, faulted, or
// reconfigured, point-to-point or bus-based.
//
// Usage:
//
//	ftsim -h 5 -k 2 -faults 3,11        # Ascend sum on a reconfigured FT machine
//	ftsim -h 5 -faults 7 -unprotected   # what the same fault does without spares
//	ftsim -h 4 -k 1 -bus                # permutation traffic on the bus machine
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftnet/internal/ascend"
	"ftnet/internal/bus"
	"ftnet/internal/ft"
	"ftnet/internal/shuffle"
	"ftnet/internal/sim"
)

func main() {
	h := flag.Int("h", 5, "bits (machine has 2^h logical nodes)")
	k := flag.Int("k", 2, "fault budget of the FT machine")
	faultList := flag.String("faults", "", "comma-separated faulty host nodes")
	unprotected := flag.Bool("unprotected", false, "run on the plain SE machine (no spares)")
	busMode := flag.Bool("bus", false, "run permutation traffic on the bus machine instead")
	ports := flag.Int("ports", 2, "values a node can inject per cycle")
	flag.Parse()

	faults, err := parseFaults(*faultList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
		os.Exit(1)
	}

	if *busMode {
		if err := runBus(*h, *k, *ports); err != nil {
			fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runAscend(*h, *k, faults, *unprotected); err != nil {
		fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
		os.Exit(1)
	}
}

func runAscend(h, k int, faults []int, unprotected bool) error {
	n := 1 << h
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	want := int64(n) * int64(n+1) / 2

	if unprotected {
		se := shuffle.MustNew(shuffle.Params{H: h})
		hst := ascend.NewHealthy(se)
		for _, f := range faults {
			if f >= n {
				return fmt.Errorf("fault %d out of range for unprotected machine [0,%d)", f, n)
			}
			hst.Dead[f] = true
		}
		res, err := ascend.RunSE(h, hst, vals, ascend.Sum)
		if err != nil {
			frac, ferr := ascend.SurvivingFraction(h, hst, vals, ascend.Sum)
			if ferr != nil {
				return ferr
			}
			fmt.Printf("unprotected SE_%d with faults %v: Ascend FAILS (%v)\n", h, faults, err)
			fmt.Printf("salvageable results: %.1f%%\n", 100*frac)
			return nil
		}
		fmt.Printf("unprotected SE_%d: Ascend completed in %d cycles (sum=%d, want %d)\n",
			h, res.Cycles, res.Values[0], want)
		return nil
	}

	p := ft.SEParams{H: h, K: k}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		return err
	}
	loc, err := ft.SEMapViaDB(p, psi, faults)
	if err != nil {
		return err
	}
	dead := make([]bool, p.NHost())
	for _, f := range faults {
		dead[f] = true
	}
	res, err := ascend.RunSE(h, &ascend.Host{G: host, Loc: loc, Dead: dead}, vals, ascend.Sum)
	if err != nil {
		return err
	}
	ok := true
	for _, v := range res.Values {
		if v != want {
			ok = false
		}
	}
	fmt.Printf("FT machine %v with faults %v: Ascend completed in %d cycles (2h=%d), results correct: %v\n",
		p, faults, res.Cycles, 2*h, ok)
	return nil
}

func runBus(h, k, ports int) error {
	p := ft.Params{M: 2, H: h, K: k}
	arch, err := bus.New(p)
	if err != nil {
		return err
	}
	m := sim.NewBusMachine(arch, ports)
	msgs, err := sim.Permutation(m.G.N(), func(x int) int { return (x + m.G.N()/2) % m.G.N() },
		sim.BFSRouter(m.G))
	if err != nil {
		return err
	}
	st, err := sim.Run(m, msgs, 100000)
	if err != nil {
		return err
	}
	fmt.Printf("bus machine %v (%d ports), half-rotation permutation: %v\n", p, ports, st)

	p2p := sim.NewPointToPoint(m.G, ports)
	msgs2, err := sim.Permutation(m.G.N(), func(x int) int { return (x + m.G.N()/2) % m.G.N() },
		sim.BFSRouter(m.G))
	if err != nil {
		return err
	}
	st2, err := sim.Run(p2p, msgs2, 100000)
	if err != nil {
		return err
	}
	fmt.Printf("point-to-point equivalent:                         %v\n", st2)
	return nil
}

func parseFaults(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
