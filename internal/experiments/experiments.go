// Package experiments regenerates every figure and every quantitative
// claim of the paper's evaluation (see DESIGN.md's per-experiment
// index): Figures 1-5, the theorem/corollary tables T1-T4, the
// Section I comparison against Samatham-Pradhan (T5), and the simulator
// experiments S1-S2 that quantify the paper's motivation and the bus
// slowdown argument.
//
// Each experiment writes a self-describing text table; cmd/ftbench
// exposes them on the command line and bench_test.go measures them.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
	"ftnet/internal/verify"
)

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F1", "Figure 1: the base-2 four-digit de Bruijn graph B_{2,4}", F1},
		{"F2", "Figure 2: the fault-tolerant graph B^1_{2,4}", F2},
		{"F3", "Figure 3: new labels of B^1_{2,4} after one fault", F3},
		{"F4", "Figure 4: B^1_{2,3} with the bus implementation", F4},
		{"F5", "Figure 5: bus reconfiguration after one fault in B^1_{2,3}", F5},
		{"T1", "Theorem 1 / Corollaries 1-2: base-2 tolerance and degree", T1},
		{"T2", "Theorem 2 / Corollaries 3-4: base-m tolerance and degree", T2},
		{"T3", "Shuffle-exchange constructions: via-dB (4k+4) vs natural", T3},
		{"T4", "Section V: bus degrees (2k+3) and bus-fault tolerance", T4},
		{"T5", "Section I: comparison with Samatham-Pradhan", T5},
		{"S1", "Motivation: Ascend workload on faulted vs reconfigured machines", S1},
		{"S2", "Section V: bus slowdown, 2 ports vs 1 port", S2},
	}
}

// AllExtended returns the paper experiments plus the extended set
// (intro motivation, connectivity comparison, distributed protocol,
// ablations, the online-service throughput scenarios).
func AllExtended() []Experiment {
	out := append(All(), extended()...)
	out = append(out, extendedMore()...)
	out = append(out, extendedFinal()...)
	return append(out, extendedFleet()...)
}

// ByID returns the experiment with the given id (paper or extended set).
func ByID(id string) (Experiment, bool) {
	for _, e := range AllExtended() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// F1 prints B_{2,4} exactly as Figure 1 presents it: 16 nodes with
// binary labels and their adjacency.
func F1(w io.Writer) error {
	p := debruijn.Params{M: 2, H: 4}
	g := debruijn.MustNew(p)
	debruijn.ApplyLabels(g, p)
	fmt.Fprintf(w, "B_{2,4}: %d nodes, %d edges, degree %d (<= 4)\n", g.N(), g.M(), g.MaxDegree())
	return printAdjacency(w, g)
}

// F2 prints B^1_{2,4}: 17 nodes, every node adjacent to the block of 4
// consecutive nodes starting at (2x-1) mod 17.
func F2(w io.Writer) error {
	p := ft.Params{M: 2, H: 4, K: 1}
	g := ft.MustNew(p)
	fmt.Fprintf(w, "%v: %d nodes, %d edges, degree %d (<= 4k+4 = %d)\n",
		p, g.N(), g.M(), g.MaxDegree(), p.DegreeBound())
	for x := 0; x < g.N(); x++ {
		fmt.Fprintf(w, "node %2d -> out-block %v\n", x, ft.OutBlock(x, p))
	}
	return nil
}

// F3 reproduces Figure 3: the new labels of B^1_{2,4} after node 1
// fails. It prints old host node -> hosted target label, and verifies
// the embedding that the solid edges of the figure realize.
func F3(w io.Writer) error {
	p := ft.Params{M: 2, H: 4, K: 1}
	host := ft.MustNew(p)
	target := debruijn.MustNew(p.Target())
	const failed = 1
	mp, err := ft.NewMapping(p.NTarget(), p.NHost(), []int{failed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fault at host node %d; reconfiguration (host <- target):\n", failed)
	inv := mp.HostToTarget()
	for v := 0; v < p.NHost(); v++ {
		switch {
		case mp.IsFaulty(v):
			fmt.Fprintf(w, "host %2d: FAULTY\n", v)
		case inv[v] < 0:
			fmt.Fprintf(w, "host %2d: spare (unused)\n", v)
		default:
			fmt.Fprintf(w, "host %2d: target %2d (%04b)\n", v, inv[v], inv[v])
		}
	}
	if err := graph.CheckEmbedding(target, host, mp.PhiSlice()); err != nil {
		return fmt.Errorf("figure-3 embedding invalid: %w", err)
	}
	fmt.Fprintf(w, "embedding verified: all %d target edges present after reconfiguration\n", target.M())
	return nil
}

// F4 prints the bus implementation of B^1_{2,3}: 9 nodes, one bus per
// node covering 4 consecutive nodes, bus degree <= 5.
func F4(w io.Writer) error {
	a, err := newBusArch(ft.Params{M: 2, H: 3, K: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "B^1_{2,3} bus implementation: %d buses, bus degree %d (<= 2k+3 = %d)\n",
		a.NumBuses(), a.MaxBusDegree(), a.DegreeBound())
	for i := 0; i < a.NumBuses(); i++ {
		fmt.Fprintf(w, "bus %d (owner %d) -> members %v\n", i, i, a.Members(i))
	}
	return nil
}

// F5 reproduces Figure 5: reconfiguration of the bus machine after one
// node fault, listing for every target edge the bus that now carries it.
func F5(w io.Writer) error {
	p := ft.Params{M: 2, H: 3, K: 1}
	a, err := newBusArch(p)
	if err != nil {
		return err
	}
	const failed = 4
	mp, err := a.Reconfigure([]int{failed}, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fault at node %d; target edges -> carrying bus:\n", failed)
	n := p.NTarget()
	for x := 0; x < n; x++ {
		for r := 0; r < 2; r++ {
			y := num.X(x, 2, r, n)
			if y == x {
				continue
			}
			busID, err := a.EdgeBus(mp, x, y, r)
			if err != nil {
				return fmt.Errorf("edge (%d,%d): %w", x, y, err)
			}
			fmt.Fprintf(w, "target edge %d->%d (r=%d): host %d->%d on bus %d\n",
				x, y, r, mp.Phi(x), mp.Phi(y), busID)
		}
	}
	return nil
}

// T1 sweeps B^k_{2,h}: node counts, measured degree vs the 4k+4 bound,
// and tolerance verification (exhaustive where feasible, randomized
// otherwise).
func T1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tnodes\tedges\tdegree\tbound 4k+4\tverified")
	for h := 3; h <= 8; h++ {
		for k := 0; k <= 6; k++ {
			p := ft.Params{M: 2, H: h, K: k}
			host := ft.MustNew(p)
			target := debruijn.MustNew(p.Target())
			mode, rep := verifyAuto(target, host, p, 30000)
			if !rep.Ok() {
				return fmt.Errorf("%v: %v", p, rep.First)
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%s (%d sets)\n",
				h, k, host.N(), host.M(), host.MaxDegree(), p.DegreeBound(), mode, rep.Checked)
		}
	}
	return tw.Flush()
}

// T2 sweeps B^k_{m,h} for m in {2..5}.
func T2(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\th\tk\tnodes\tdegree\tbound 4(m-1)k+2m\tverified")
	for _, m := range []int{2, 3, 4, 5} {
		for _, h := range []int{3, 4} {
			for k := 0; k <= 4; k++ {
				p := ft.Params{M: m, H: h, K: k}
				host := ft.MustNew(p)
				target := debruijn.MustNew(p.Target())
				mode, rep := verifyAuto(target, host, p, 20000)
				if !rep.Ok() {
					return fmt.Errorf("%v: %v", p, rep.First)
				}
				fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%s (%d sets)\n",
					m, h, k, host.N(), host.MaxDegree(), p.DegreeBound(), mode, rep.Checked)
			}
		}
	}
	return tw.Flush()
}

// T3 compares the two fault-tolerant shuffle-exchange constructions.
func T3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tvia-dB degree\tbound 4k+4\tnatural degree\tpaper 6k+4\tours 6k+6\tverified")
	for h := 3; h <= 6; h++ {
		for k := 0; k <= 4; k++ {
			p := ft.SEParams{H: h, K: k}
			se := shuffle.MustNew(shuffle.Params{H: h})
			hostV, psi, err := ft.NewSEViaDB(p)
			if err != nil {
				return err
			}
			hostN, err := ft.NewSENatural(p)
			if err != nil {
				return err
			}
			repV := verify.Randomized(se, hostV, k, func(f, _ []int) ([]int, error) {
				return ft.SEMapViaDB(p, psi, f)
			}, 40, 1, nil)
			repN := verify.Randomized(se, hostN, k, func(f, buf []int) ([]int, error) {
				m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
				if err != nil {
					return nil, err
				}
				return m.AppendPhi(buf[:0]), nil
			}, 40, 1, nil)
			if !repV.Ok() {
				return fmt.Errorf("%v via-dB: %v", p, repV.First)
			}
			if !repN.Ok() {
				return fmt.Errorf("%v natural: %v", p, repN.First)
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\tboth (%d sets)\n",
				h, k, hostV.MaxDegree(), p.DegreeBoundViaDB(),
				hostN.MaxDegree(), 6*k+4, p.DegreeBoundNatural(), repV.Checked+repN.Checked)
		}
	}
	return tw.Flush()
}

// verifyAuto picks exhaustive verification when C(n,k) is small enough,
// randomized otherwise.
func verifyAuto(target, host *graph.Graph, p ft.Params, budget int) (string, verify.Report) {
	mapper := func(f, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
	if c, err := num.Binomial(p.NHost(), p.K); err == nil && c <= budget {
		return "exhaustive", verify.Exhaustive(target, host, p.K, mapper)
	}
	return "randomized", verify.Randomized(target, host, p.K, mapper, 20, 1, nil)
}

func printAdjacency(w io.Writer, g *graph.Graph) error {
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		labels := make([]string, len(nbrs))
		for i, v := range nbrs {
			labels[i] = g.Label(v)
		}
		sort.Strings(labels)
		if _, err := fmt.Fprintf(w, "%s: %v\n", g.Label(u), labels); err != nil {
			return err
		}
	}
	return nil
}

// stableRng returns the deterministic generator used by the simulator
// experiments.
func stableRng() *rand.Rand { return rand.New(rand.NewSource(19920415)) }
