package ftnet

import (
	"ftnet/internal/commit"
	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/journal"
)

// This file exposes the online reconfiguration service: a Manager owns
// live network instances, absorbs streams of fault/repair events
// (singly or as atomic bursts), and answers "where does target node x
// run now?" lock-free from an immutable epoch snapshot, backed by a
// shared, sharded, single-flight LRU mapping cache. Every accepted
// transition flows through one ordered commit pipeline — journal
// append, durability wait, snapshot publish, subscriber fan-out — so
// the WAL, the live watch stream, follower replication, and checkpoint
// compaction all observe the same gap-free sequence. cmd/ftnetd serves
// this API over HTTP/JSON; cmd/ftload generates traffic against it.

// Fleet-facing types, re-exported from internal/fleet.
type (
	// FleetManager is the sharded registry owning many live instances.
	FleetManager = fleet.Manager
	// FleetOptions configures NewFleetManager.
	FleetOptions = fleet.Options
	// FleetSpec describes the topology of one instance.
	FleetSpec = fleet.Spec
	// FleetEvent is one fault or repair notification.
	FleetEvent = fleet.Event
	// FleetInstance is one live network's state machine.
	FleetInstance = fleet.Instance
	// FleetStats is the fleet-wide counter snapshot.
	FleetStats = fleet.Stats
	// FleetSnapshot is the immutable per-epoch state (fault set +
	// mapping + epoch) an instance publishes; FleetInstance.Snapshot
	// returns the current one, and it stays valid for its epoch after
	// later events.
	FleetSnapshot = ft.Snapshot
	// FleetJournal is the durable epoch journal: an append-only log of
	// one O(k) CRC32C-framed record per accepted transition. Pass it in
	// FleetOptions.Journal (or via FleetManager.SetJournal after
	// recovery) and replay it with FleetManager.Recover/RecoverFile.
	FleetJournal = journal.Writer
	// FleetJournalOptions selects the journal's fsync policy and
	// buffering.
	FleetJournalOptions = journal.Options
	// FleetRecoverStats reports a journal replay: records, transitions,
	// torn-tail handling, and wall-clock recovery time.
	FleetRecoverStats = fleet.RecoverStats
	// FleetCommitEntry is one committed transition: the canonical
	// journal record plus its fleet-wide, gap-free sequence number.
	// FleetManager.Subscribe streams them (catch-up, then live tail).
	FleetCommitEntry = commit.Entry
	// FleetCommitSub is a bounded subscription to the commit stream;
	// read entries from C and check Err when it closes.
	FleetCommitSub = commit.Sub
	// FleetCompactStats reports one checkpoint compaction
	// (FleetManager.Compact): the journal is atomically rewritten as
	// [seq marker, one checkpoint record per instance], bounding replay.
	FleetCompactStats = fleet.CompactStats
	// FleetFollower tails another daemon's /v1/watch stream and turns
	// the local manager into a verified replica (every forwarded record
	// is checked bit-identically against a fresh recomputation).
	FleetFollower = fleet.Follower
	// FleetFollowerOptions tunes the replication loop.
	FleetFollowerOptions = fleet.FollowerOptions
	// FleetFollowerStats is the replication loop's counter snapshot.
	FleetFollowerStats = fleet.FollowerStats
	// FleetWatchEntry is the NDJSON wire form of a commit entry on the
	// GET /v1/watch stream.
	FleetWatchEntry = fleet.WatchEntry
)

// Topology kinds and event kinds for FleetSpec / FleetEvent.
const (
	FleetDeBruijn = fleet.KindDeBruijn
	FleetShuffle  = fleet.KindShuffle
	FleetFault    = fleet.EventFault
	FleetRepair   = fleet.EventRepair
)

// Journal fsync policies for FleetJournalOptions.Sync.
const (
	FleetSyncAlways   = journal.SyncAlways   // fsync before acknowledging (group-committed)
	FleetSyncInterval = journal.SyncInterval // fsync on a timer
	FleetSyncNever    = journal.SyncNever    // flush on Close only
)

// NewFleetManager returns an empty online-reconfiguration manager.
func NewFleetManager(opts FleetOptions) *FleetManager {
	return fleet.NewManager(opts)
}

// OpenFleetJournal opens (or creates) a durable epoch journal file in
// append mode. Recover the previous log into the manager first
// (FleetManager.RecoverFile also truncates any torn tail), then attach
// the writer with FleetManager.SetJournal.
func OpenFleetJournal(path string, opts FleetJournalOptions) (*FleetJournal, error) {
	return journal.Create(path, opts)
}

// NewFleetFollower wires a replication loop from a leader daemon's
// base URL into mgr; drive it with its Run method. The manager should
// be served read-only (its state comes from the leader's commit
// stream).
func NewFleetFollower(mgr *FleetManager, leaderURL string, opts FleetFollowerOptions) (*FleetFollower, error) {
	return fleet.NewFollower(mgr, leaderURL, opts)
}
