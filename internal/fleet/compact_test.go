package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ftnet/internal/journal"
)

// syncedJournalBytes snapshots the live journal file after forcing the
// writer's buffer and fsync, so the copy is a clean prefix.
func syncedJournalBytes(t *testing.T, m *Manager) []byte {
	t.Helper()
	w := m.CommitLog().Writer()
	if w == nil {
		t.Fatal("manager has no journal")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func recoverInto(t *testing.T, data []byte) *Manager {
	t.Helper()
	m := NewManager(Options{})
	if _, err := m.Recover(bytes.NewReader(data)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	return m
}

// TestCompactRecoverEquivalence is the compaction property test:
// recovery from the compacted log (checkpoint + suffix) must be
// bit-identical — same instances, epochs, fault sets, phi slices — to
// recovery from the full pre-compaction history, at the compaction cut
// and again after a post-compaction suffix of random traffic, across
// random operation sequences.
func TestCompactRecoverEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := journaledManager(t, t.TempDir())
			driveRandom(t, rng, m, 80)

			full := syncedJournalBytes(t, m)
			mFull := recoverInto(t, full)

			st, err := m.Compact()
			if err != nil {
				t.Fatal(err)
			}
			compacted := syncedJournalBytes(t, m)
			if len(compacted) >= len(full) && st.Instances > 0 && len(full) > 0 {
				// Not strictly guaranteed for tiny logs, but 80 random ops
				// produce far more transitions than instances.
				t.Errorf("compaction grew the log: %d -> %d bytes", len(full), len(compacted))
			}
			mCompact := recoverInto(t, compacted)
			assertSameFleet(t, mFull, mCompact)
			assertSameFleet(t, m, mCompact)

			// A suffix of more random traffic, then recover again: the
			// checkpoint+suffix replay must match the live fleet.
			for _, id := range m.List() {
				in := mustGet(t, m, id)
				nHost := in.Snapshot().NHost()
				for i := 0; i < 10; i++ {
					kind := EventFault
					if rng.Intn(2) == 0 {
						kind = EventRepair
					}
					m.EventBatch(id, []Event{{Kind: kind, Node: rng.Intn(nHost)}})
				}
			}
			after := syncedJournalBytes(t, m)
			mAfter := recoverInto(t, after)
			assertSameFleet(t, m, mAfter)

			// The compacted-at-cut replay is bounded: one seq-base marker
			// plus one checkpoint per instance.
			recs, _, err := journal.ReadAll(bytes.NewReader(compacted))
			if err != nil {
				t.Fatal(err)
			}
			if want := 1 + st.Instances; len(recs) != want {
				t.Errorf("compacted log holds %d records, want %d", len(recs), want)
			}
		})
	}
}

// TestCompactUnderConcurrentWrites compacts repeatedly while writers
// storm: no lost transition, no torn state — the final journal replays
// to exactly the live fleet, and a live subscriber sees a gap-free
// suffix.
func TestCompactUnderConcurrentWrites(t *testing.T) {
	m := journaledManager(t, t.TempDir())
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 4}
	_, nHost := TargetHostSizesSpec(spec)
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = fmt.Sprintf("i%d", i)
		if _, err := m.Create(ids[i], spec); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 150; i++ {
				id := ids[rng.Intn(len(ids))]
				kind := EventFault
				if rng.Intn(2) == 0 {
					kind = EventRepair
				}
				m.EventBatch(id, []Event{{Kind: kind, Node: rng.Intn(nHost)}})
			}
		}(g)
	}
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Compact(); err != nil {
				t.Errorf("compact %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// A live subscriber across compactions: ordinary entries step by
	// exactly +1 (compactions emit nothing to a live tail); only a
	// checkpoint group — served if the subscriber was still catching up
	// when a compaction landed — may move the cursor, never backwards.
	sub, err := m.Subscribe(m.NextSeq(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	subDone := make(chan error, 1)
	go func() {
		var last uint64
		for e := range sub.C {
			if e.Rec.Op == journal.OpCheckpoint {
				if e.Seq < last {
					subDone <- fmt.Errorf("checkpoint seq %d ran backwards from %d", e.Seq, last)
					return
				}
				last = e.Seq
				continue
			}
			if last != 0 && e.Seq != last+1 {
				subDone <- fmt.Errorf("live subscriber saw seq %d after %d", e.Seq, last)
				return
			}
			last = e.Seq
		}
		subDone <- nil
	}()

	writers.Wait()
	close(stop)
	<-compactorDone
	sub.Close()
	if err := <-subDone; err != nil {
		t.Fatal(err)
	}

	mRec := recoverInto(t, syncedJournalBytes(t, m))
	assertSameFleet(t, m, mRec)
}

// TestRecoverCleansStaleCompactionTemp pins the crash-mid-compaction
// boot path: a half-written .compact temp file (the rename never
// happened) must be ignored and removed, and the old journal — which
// won — replays normally.
func TestRecoverCleansStaleCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "epochs.wal")
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Journal: w})
	if _, err := m.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EventBatch("a", []Event{{EventFault, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash residue: a garbage temp checkpoint next to the journal.
	tmp := path + ".compact"
	if err := os.WriteFile(tmp, []byte{0xde, 0xad, 0xbe, 0xef}, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(Options{})
	st, err := m2.RecoverFile(path)
	if err != nil {
		t.Fatalf("recovery with stale temp: %v", err)
	}
	if st.Records != 2 || st.Torn {
		t.Errorf("recovery stats %+v, want 2 clean records", st)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale %s not removed on boot", tmp)
	}
	if s := mustGet(t, m2, "a").Snapshot(); s.Epoch() != 1 || s.NumFaults() != 1 {
		t.Errorf("recovered to epoch %d faults %v", s.Epoch(), s.Faults())
	}
}
