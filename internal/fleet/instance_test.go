package fleet

import (
	"strings"
	"testing"

	"ftnet/internal/ft"
)

func newTestInstance(t *testing.T, spec Spec) *Instance {
	t.Helper()
	in, err := newInstance("test", spec, NewCache(0), newPipeline())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceLifecycle(t *testing.T) {
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	in := newTestInstance(t, spec)

	// Zero faults: identity placement.
	for _, x := range []int{0, 7, 15} {
		if phi, err := in.Lookup(x); err != nil || phi != x {
			t.Fatalf("healthy Lookup(%d) = %d, %v; want identity", x, phi, err)
		}
	}

	res, err := in.Apply(Event{Kind: EventFault, Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NumFaults != 1 || res.Budget != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	// The rank mapping shifts everything at or above the fault up by one.
	if phi, _ := in.Lookup(2); phi != 2 {
		t.Errorf("Lookup(2) = %d, want 2", phi)
	}
	if phi, _ := in.Lookup(3); phi != 4 {
		t.Errorf("Lookup(3) = %d, want 4", phi)
	}

	if _, err := in.Apply(Event{Kind: EventFault, Node: 11}); err != nil {
		t.Fatal(err)
	}
	// Cross-check the full map against a one-shot recompute.
	want, err := ft.NewMapping(16, 18, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		phi, err := in.Lookup(x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want.Phi(x) {
			t.Fatalf("after 2 faults: Lookup(%d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	// Repair brings the map back.
	if _, err := in.Apply(Event{Kind: EventRepair, Node: 3}); err != nil {
		t.Fatal(err)
	}
	want, _ = ft.NewMapping(16, 18, []int{11})
	for x := 0; x < 16; x++ {
		if phi, _ := in.Lookup(x); phi != want.Phi(x) {
			t.Fatalf("after repair: Lookup(%d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	info := in.Info()
	if info.Epoch != 3 || len(info.Faults) != 1 || info.Faults[0] != 11 || info.SparesFree != 1 {
		t.Fatalf("unexpected info %+v", info)
	}
}

func TestInstanceRejectsInvalidEvents(t *testing.T) {
	cases := []struct {
		name string
		prep []Event
		ev   Event
		want string
	}{
		{"out of range", nil, Event{EventFault, 17}, "out of range"},
		{"negative", nil, Event{EventFault, -1}, "out of range"},
		{"unknown kind", nil, Event{"explode", 3}, "unknown event kind"},
		{"repair healthy", nil, Event{EventRepair, 5}, "not faulty"},
		{"double fault", []Event{{EventFault, 5}}, Event{EventFault, 5}, "already faulty"},
		{"over budget", []Event{{EventFault, 5}}, Event{EventFault, 6}, "budget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := newTestInstance(t, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 1})
			for _, ev := range c.prep {
				if _, err := in.Apply(ev); err != nil {
					t.Fatal(err)
				}
			}
			before := in.Info()
			_, err := in.Apply(c.ev)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want containing %q", err, c.want)
			}
			after := in.Info()
			if after.Epoch != before.Epoch || len(after.Faults) != len(before.Faults) {
				t.Fatalf("rejected event mutated state: %+v -> %+v", before, after)
			}
			if after.Rejected != before.Rejected+1 {
				t.Fatalf("rejected counter = %d, want %d", after.Rejected, before.Rejected+1)
			}
		})
	}
}

// TestInstanceApplyBatchAtomic pins the burst contract: a valid batch
// applies whole with the epoch advancing exactly once; a batch with
// any invalid event applies nothing.
func TestInstanceApplyBatchAtomic(t *testing.T) {
	in := newTestInstance(t, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 3})
	res, err := in.ApplyBatch([]Event{
		{Kind: EventFault, Node: 3},
		{Kind: EventFault, Node: 11},
		{Kind: EventFault, Node: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NumFaults != 3 || res.Applied != 3 {
		t.Fatalf("burst result %+v, want epoch 1, 3 faults, 3 applied", res)
	}
	want, err := ft.NewMapping(16, 19, []int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		if phi, _ := in.Lookup(x); phi != want.Phi(x) {
			t.Fatalf("after burst: Lookup(%d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	// A burst whose last event is invalid must leave the state at the
	// pre-burst epoch with the pre-burst faults: all-or-nothing.
	before := in.Info()
	_, err = in.ApplyBatch([]Event{
		{Kind: EventRepair, Node: 3},
		{Kind: EventRepair, Node: 5}, // 5 is healthy: invalid
	})
	if err == nil {
		t.Fatal("partially-invalid burst accepted")
	}
	after := in.Info()
	if after.Epoch != before.Epoch || len(after.Faults) != len(before.Faults) {
		t.Fatalf("rejected burst mutated state: %+v -> %+v", before, after)
	}
	if phi, _ := in.Lookup(3); phi != want.Phi(3) {
		t.Fatalf("rejected burst changed Lookup(3) = %d, want %d", phi, want.Phi(3))
	}

	// Repair burst drains the faults in one transition.
	res, err = in.ApplyBatch([]Event{
		{Kind: EventRepair, Node: 3},
		{Kind: EventRepair, Node: 7},
		{Kind: EventRepair, Node: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 || res.NumFaults != 0 {
		t.Fatalf("drain result %+v, want epoch 2, 0 faults", res)
	}
}

// TestInstanceRejectedByCause pins the rejected-event accounting split:
// budget-exceeded, state conflicts, and invalid input count separately.
func TestInstanceRejectedByCause(t *testing.T) {
	in := newTestInstance(t, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 1})
	if _, err := in.Apply(Event{Kind: EventFault, Node: 5}); err != nil {
		t.Fatal(err)
	}
	reject := func(ev Event) {
		t.Helper()
		if _, err := in.Apply(ev); err == nil {
			t.Fatalf("event %+v accepted", ev)
		}
	}
	reject(Event{Kind: EventFault, Node: 6})      // budget (k=1 exhausted)
	reject(Event{Kind: EventFault, Node: 5})      // conflict: already faulty
	reject(Event{Kind: EventRepair, Node: 6})     // conflict: not faulty
	reject(Event{Kind: EventFault, Node: 99})     // invalid: out of range
	reject(Event{Kind: "explode", Node: 0})       // invalid: unknown kind
	if _, err := in.ApplyBatch(nil); err == nil { // invalid: empty batch
		t.Fatal("empty batch accepted")
	}
	info := in.Info()
	want := RejectedStats{Budget: 1, Conflict: 2, Invalid: 3}
	if info.RejectedBy != want {
		t.Fatalf("rejected by cause = %+v, want %+v", info.RejectedBy, want)
	}
	if info.Rejected != want.Total() {
		t.Fatalf("rejected total = %d, want %d", info.Rejected, want.Total())
	}
}

// TestInstanceSnapshotImmutable pins that a held snapshot keeps
// answering for its epoch after later events.
func TestInstanceSnapshotImmutable(t *testing.T) {
	in := newTestInstance(t, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2})
	if _, err := in.Apply(Event{Kind: EventFault, Node: 3}); err != nil {
		t.Fatal(err)
	}
	held := in.Snapshot()
	if _, err := in.Apply(Event{Kind: EventFault, Node: 4}); err != nil {
		t.Fatal(err)
	}
	if held.Epoch() != 1 || held.NumFaults() != 1 || held.Phi(3) != 4 {
		t.Fatalf("held snapshot changed: epoch %d faults %v", held.Epoch(), held.Faults())
	}
	if cur := in.Snapshot(); cur.Epoch() != 2 || cur.NumFaults() != 2 {
		t.Fatalf("current snapshot epoch %d faults %v", cur.Epoch(), cur.Faults())
	}
}

func TestInstanceShuffleMatchesSEMapViaDB(t *testing.T) {
	const h, k = 4, 3
	in := newTestInstance(t, Spec{Kind: KindShuffle, H: h, K: k})
	faults := []int{1, 8, 17}
	for _, f := range faults {
		if _, err := in.Apply(Event{Kind: EventFault, Node: f}); err != nil {
			t.Fatal(err)
		}
	}
	p := ft.SEParams{H: h, K: k}
	_, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ft.SEMapViaDB(p, psi, faults)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < p.NTarget(); x++ {
		phi, err := in.Lookup(x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want[x] {
			t.Fatalf("SE Lookup(%d) = %d, want %d", x, phi, want[x])
		}
	}
}

// TestInstancePhiSliceAgreesWithLookup pins the target-indexed
// contract: PhiSlice()[x] == Lookup(x) for both kinds — in particular
// for shuffle, where the slice must compose the psi embedding.
func TestInstancePhiSliceAgreesWithLookup(t *testing.T) {
	specs := []Spec{
		{Kind: KindDeBruijn, M: 2, H: 4, K: 2},
		{Kind: KindShuffle, H: 4, K: 2},
	}
	for _, spec := range specs {
		in := newTestInstance(t, spec)
		for _, f := range []int{1, 9} {
			if _, err := in.Apply(Event{Kind: EventFault, Node: f}); err != nil {
				t.Fatal(err)
			}
		}
		slice := in.PhiSlice()
		for x := range slice {
			phi, err := in.Lookup(x)
			if err != nil {
				t.Fatal(err)
			}
			if slice[x] != phi {
				t.Fatalf("%s: PhiSlice()[%d] = %d but Lookup(%d) = %d",
					spec.Kind, x, slice[x], x, phi)
			}
		}
	}
}

func TestInstanceLookupOutOfRange(t *testing.T) {
	in := newTestInstance(t, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 1})
	if _, err := in.Lookup(16); err == nil {
		t.Error("Lookup(16) on 16-node target accepted")
	}
	if _, err := in.Lookup(-1); err == nil {
		t.Error("Lookup(-1) accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Kind: KindDeBruijn, M: 2, H: 4, K: 2},
		{Kind: KindDeBruijn, M: 3, H: 3, K: 0},
		{Kind: KindShuffle, H: 5, K: 4},
		{Kind: KindShuffle, M: 2, H: 3, K: 1},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	bad := []Spec{
		{Kind: "torus", M: 2, H: 4, K: 1},
		{Kind: KindDeBruijn, M: 1, H: 4, K: 1},
		{Kind: KindDeBruijn, M: 2, H: 2, K: 1},
		{Kind: KindDeBruijn, M: 2, H: 4, K: -1},
		{Kind: KindShuffle, M: 3, H: 4, K: 1},
		{Kind: KindShuffle, H: 2, K: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
}
