package fleet

import (
	"fmt"
	"testing"
)

// Scale benchmarks for the compact rank-based mapping representation:
// Apply (the write path: atomic burst -> next snapshot, through the
// mapping cache) and Lookup (the read path: pointer load + rank
// search) swept over host sizes 2^10 .. 2^20 — about 10^3 to 10^6
// nodes. The acceptance criterion is in the allocs/op column: both
// paths must be flat in nHost, which TestApplyAllocsIndependentOfN
// (below) and the CI bench check (cmd/ftbenchjson -check) enforce.
//
//	go test ./internal/fleet -bench Scale -benchtime 100x -benchmem

const scaleK = 16

var scaleSizes = []int{10, 14, 17, 20} // h: nTarget = 2^h, nHost = 2^h + k

func scaleInstance(b testing.TB, h int) *Instance {
	b.Helper()
	in, err := newInstance(fmt.Sprintf("scale-h%d", h),
		Spec{Kind: KindDeBruijn, M: 2, H: h, K: scaleK}, NewCache(0), newPipeline())
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// applyScalePair returns the steady-state transition pair: a 4-event
// rack burst and its repair, the recurring pattern that exercises both
// the snapshot derivation and the mapping cache hit path.
func applyScalePair() (fault, repair []Event) {
	for n := 0; n < 4; n++ {
		fault = append(fault, Event{Kind: EventFault, Node: n})
		repair = append(repair, Event{Kind: EventRepair, Node: n})
	}
	return fault, repair
}

func BenchmarkApplyScale(b *testing.B) {
	for _, h := range scaleSizes {
		b.Run(fmt.Sprintf("n=%d", 1<<h), func(b *testing.B) {
			in := scaleInstance(b, h)
			fault, repair := applyScalePair()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := fault
				if i%2 == 1 {
					batch = repair
				}
				if _, err := in.ApplyBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			// Leave the instance balanced so b.N parity cannot leak
			// fault state into a rerun of the same sub-benchmark.
			if in.Snapshot().NumFaults() > 0 {
				if _, err := in.ApplyBatch(repair); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLookupScale(b *testing.B) {
	for _, h := range scaleSizes {
		b.Run(fmt.Sprintf("n=%d", 1<<h), func(b *testing.B) {
			in := scaleInstance(b, h)
			fault, _ := applyScalePair()
			if _, err := in.ApplyBatch(fault); err != nil {
				b.Fatal(err)
			}
			mask := 1<<h - 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if phi, err := in.Lookup(i & mask); err != nil || phi < 0 {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestApplyAllocsIndependentOfN is the acceptance guard for the
// compact representation: per-transition allocation counts must not
// grow with the host size. It measures steady-state ApplyBatch
// allocations at 2^10 and at 2^20 and fails if the million-node
// instance allocates more than marginally above the thousand-node one
// (the +1 headroom tolerates map/GC jitter, not an O(n) slice).
func TestApplyAllocsIndependentOfN(t *testing.T) {
	allocsAt := func(h int) float64 {
		in := scaleInstance(t, h)
		fault, repair := applyScalePair()
		pair := func() {
			if _, err := in.ApplyBatch(fault); err != nil {
				t.Fatal(err)
			}
			if _, err := in.ApplyBatch(repair); err != nil {
				t.Fatal(err)
			}
		}
		pair() // warm the mapping cache: steady state, not first touch
		return testing.AllocsPerRun(50, pair) / 2
	}
	small := allocsAt(10)
	large := allocsAt(20)
	t.Logf("ApplyBatch allocs/op: %.1f at n=2^10, %.1f at n=2^20", small, large)
	if large > small+1 {
		t.Errorf("Apply allocations scale with nHost: %.1f at 2^20 vs %.1f at 2^10", large, small)
	}
}

// TestLookupAllocFree pins the read path at the largest swept size:
// zero allocations per lookup on a million-node instance.
func TestLookupAllocFree(t *testing.T) {
	in := scaleInstance(t, 20)
	fault, _ := applyScalePair()
	if _, err := in.ApplyBatch(fault); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := in.Lookup(1<<20 - 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup allocates %.1f objects per call on a 2^20 instance, want 0", allocs)
	}
}
