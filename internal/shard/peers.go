package shard

import (
	"fmt"
	"strings"
)

// ParsePeers parses a ring-membership flag ("name=url,name=url,...")
// into the member -> base-URL map every shard-aware binary takes:
// ftnetd's -shard-peers, ftproxy's -peers, ftload's -peers. Trailing
// slashes are trimmed so URL concatenation stays uniform.
func ParsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf(`shard: bad peers entry %q (want "name=url")`, part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("shard: duplicate peers member %q", name)
		}
		peers[name] = strings.TrimSuffix(url, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: peers list is empty")
	}
	return peers, nil
}
