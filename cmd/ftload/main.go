// Command ftload is a load generator for ftnetd: it creates a fleet of
// instances, drives them with a configurable mix of fault/repair events
// and phi lookups from concurrent workers, and reports throughput and
// latency percentiles.
//
// Usage:
//
//	ftload -addr http://localhost:8080 -instances 4 -kind debruijn \
//	       -m 2 -digits 6 -k 4 -workers 8 -requests 20000 -eventfrac 0.1
//
// With -eventfrac 0.1, ~10% of operations are reconfiguration events
// (fault or repair, 50/50) and ~90% are lookups — the read-heavy shape
// a fleet of mostly-healthy machines produces. Rejected events (budget
// exhausted, repairing a healthy node) are counted separately: they are
// the daemon correctly enforcing the paper's k-fault precondition, not
// failures.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
)

type config struct {
	addr      string
	instances int
	spec      fleet.Spec
	workers   int
	requests  int
	eventFrac float64
	seed      int64
}

func main() {
	var cfg config
	var kind string
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "base URL of the ftnetd daemon")
	flag.IntVar(&cfg.instances, "instances", 4, "number of instances to create and drive")
	flag.StringVar(&kind, "kind", "debruijn", `topology kind: "debruijn" or "shuffle"`)
	flag.IntVar(&cfg.spec.M, "m", 2, "de Bruijn base")
	flag.IntVar(&cfg.spec.H, "digits", 6, "digits/bits h (2^h or m^h target nodes)")
	flag.IntVar(&cfg.spec.K, "k", 4, "fault budget per instance")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent workers")
	flag.IntVar(&cfg.requests, "requests", 20000, "total operations to issue")
	flag.Float64Var(&cfg.eventFrac, "eventfrac", 0.1, "fraction of ops that are fault/repair events")
	flag.Int64Var(&cfg.seed, "seed", 1, "rng seed")
	flag.Parse()
	cfg.spec.Kind = fleet.Kind(kind)

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ftload: %v\n", err)
		os.Exit(1)
	}
}

// opStats accumulates one worker's measurements; workers keep their own
// and the reporter merges, so the hot loop takes no locks.
type opStats struct {
	lookups   int
	events    int
	rejected  int
	errors    int
	latencies []time.Duration // every successful operation
}

func run(cfg config, out io.Writer) error {
	if cfg.instances < 1 || cfg.workers < 1 || cfg.requests < 1 {
		return fmt.Errorf("instances, workers and requests must be positive")
	}
	if err := cfg.spec.Validate(); err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Preflight: the daemon must be alive.
	resp, err := client.Get(cfg.addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unreachable: %v", err)
	}
	resp.Body.Close()

	// Create the fleet (tolerating instances left over from a prior run).
	ids := make([]string, cfg.instances)
	for i := range ids {
		ids[i] = fmt.Sprintf("load-%d", i)
		body, _ := json.Marshal(fleet.CreateRequest{ID: ids[i], Spec: cfg.spec})
		resp, err := client.Post(cfg.addr+"/v1/instances", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("create %s: %v", ids[i], err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("create %s: status %d", ids[i], resp.StatusCode)
		}
	}

	nTarget, nHost := targetHostSizes(cfg.spec)
	perWorker := make([]opStats, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		// Spread the request budget over workers; the first few absorb
		// the remainder.
		n := cfg.requests / cfg.workers
		if w < cfg.requests%cfg.workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for i := 0; i < n; i++ {
				id := ids[rng.Intn(len(ids))]
				if rng.Float64() < cfg.eventFrac {
					driveEvent(client, cfg.addr, id, rng, nHost, st)
				} else {
					driveLookup(client, cfg.addr, id, rng.Intn(nTarget), st)
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := opStats{}
	for i := range perWorker {
		st := &perWorker[i]
		total.lookups += st.lookups
		total.events += st.events
		total.rejected += st.rejected
		total.errors += st.errors
		total.latencies = append(total.latencies, st.latencies...)
	}
	report(out, cfg, total, elapsed)
	if total.errors > 0 {
		return fmt.Errorf("%d operations failed", total.errors)
	}
	return nil
}

func targetHostSizes(spec fleet.Spec) (nTarget, nHost int) {
	if spec.Kind == fleet.KindShuffle {
		p := ft.SEParams{H: spec.H, K: spec.K}
		return p.NTarget(), p.NHost()
	}
	p := ft.Params{M: spec.M, H: spec.H, K: spec.K}
	return p.NTarget(), p.NHost()
}

func driveEvent(client *http.Client, addr, id string, rng *rand.Rand, nHost int, st *opStats) {
	ev := fleet.Event{Kind: fleet.EventFault, Node: rng.Intn(nHost)}
	if rng.Intn(2) == 0 {
		ev.Kind = fleet.EventRepair
	}
	body, _ := json.Marshal(ev)
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/instances/"+id+"/events", "application/json", bytes.NewReader(body))
	if err != nil {
		st.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		st.events++
		st.latencies = append(st.latencies, time.Since(t0))
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusBadRequest:
		// The daemon enforcing the budget / state machine: expected.
		st.rejected++
		st.latencies = append(st.latencies, time.Since(t0))
	default:
		st.errors++
	}
}

func driveLookup(client *http.Client, addr, id string, x int, st *opStats) {
	t0 := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/v1/instances/%s/phi?x=%d", addr, id, x))
	if err != nil {
		st.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.errors++
		return
	}
	st.lookups++
	st.latencies = append(st.latencies, time.Since(t0))
}

// percentile returns the p-th percentile (0 <= p <= 100) of sorted
// latencies using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func report(out io.Writer, cfg config, total opStats, elapsed time.Duration) {
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	done := len(total.latencies)
	fmt.Fprintf(out, "ftload: %d ops in %v against %s\n", done, elapsed.Round(time.Millisecond), cfg.addr)
	fmt.Fprintf(out, "  fleet        %d x %s instances (kind=%s h=%d k=%d), %d workers, eventfrac %.2f\n",
		cfg.instances, cfg.spec.Kind, cfg.spec.Kind, cfg.spec.H, cfg.spec.K, cfg.workers, cfg.eventFrac)
	fmt.Fprintf(out, "  lookups      %d\n", total.lookups)
	fmt.Fprintf(out, "  events       %d applied, %d rejected (budget/state enforcement)\n",
		total.events, total.rejected)
	fmt.Fprintf(out, "  errors       %d\n", total.errors)
	if elapsed > 0 {
		fmt.Fprintf(out, "  throughput   %.0f ops/s\n", float64(done)/elapsed.Seconds())
	}
	fmt.Fprintf(out, "  latency      p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(total.latencies, 50), percentile(total.latencies, 90),
		percentile(total.latencies, 99), percentile(total.latencies, 100))
}
