package ft

import (
	"fmt"

	"ftnet/internal/num"
)

// This file exposes the paper's technical lemmas as checkable functions.
// They serve two purposes: the test suite exercises them as properties
// over randomized inputs (machine-checking the paper's proofs on
// concrete instances), and the tolerance verifier uses WrapCount to
// recompute the edge witnesses of Theorems 1 and 2.

// DeltaMonotone checks Lemma 1 on a concrete healthy set: for target
// nodes a < b, the displacements delta_a = phi(a) - a and
// delta_b = phi(b) - b satisfy delta_a <= delta_b. It returns an error
// naming the first violation.
func DeltaMonotone(m *Mapping) error {
	prev := 0
	for x := 0; x < m.NTarget; x++ {
		d := m.Delta(x)
		if d < 0 || d > m.NHost-m.NTarget {
			return fmt.Errorf("ft: delta(%d) = %d outside [0, %d]", x, d, m.NHost-m.NTarget)
		}
		if x > 0 && d < prev {
			return fmt.Errorf("ft: delta not monotone at %d: %d < %d", x, d, prev)
		}
		prev = d
	}
	return nil
}

// WrapCount returns the integer t with y = m*x + r - t*m^h for the
// target edge y = X(x, m, r, m^h). Lemma 2 (base 2) and Lemma 3
// (base m) bound t:
//
//	x < y  =>  t in {0, 1, ..., m-2}
//	x > y  =>  t in {1, 2, ..., m-1}
func WrapCount(x, y, r, m, h int) int {
	n := num.MustIPow(m, h)
	return (m*x + r - y) / n
}

// CheckWrapLemma validates Lemma 2/3 for a concrete target edge
// y = X(x,m,r,m^h): it recomputes t and confirms the claimed range.
func CheckWrapLemma(x, y, r, m, h int) error {
	n := num.MustIPow(m, h)
	if y != num.X(x, m, r, n) {
		return fmt.Errorf("ft: (%d,%d) with r=%d is not a target edge", x, y, r)
	}
	if x == y {
		return fmt.Errorf("ft: self-loop (%d,%d) is not an edge", x, y)
	}
	t := WrapCount(x, y, r, m, h)
	if m*x+r-t*n != y {
		return fmt.Errorf("ft: wrap count %d does not satisfy y = mx + r - t*m^h", t)
	}
	if x < y {
		if t < 0 || t > m-2 {
			return fmt.Errorf("ft: x<y but t=%d not in {0..%d}", t, m-2)
		}
	} else {
		if t < 1 || t > m-1 {
			return fmt.Errorf("ft: x>y but t=%d not in {1..%d}", t, m-1)
		}
	}
	return nil
}

// EdgeWitness reproduces the constructive step of the proofs of
// Theorems 1 and 2: for a target edge y = X(x, m, r, m^h) and a
// reconfiguration map, it computes s = k*t + r + delta_y - m*delta_x
// and verifies
//
//	phi(y) = X(phi(x), m, s, m^h + k)   with   s in [RMin(), RMax()].
//
// It returns s, or an error if the witness falls outside the edge rule —
// which would falsify the theorem on this instance.
func EdgeWitness(p Params, mp *Mapping, x, y, r int) (int, error) {
	if err := CheckWrapLemma(x, y, r, p.M, p.H); err != nil {
		return 0, err
	}
	t := WrapCount(x, y, r, p.M, p.H)
	dx := mp.Delta(x)
	dy := mp.Delta(y)
	s := p.K*t + r + dy - m1(p.M, dx)
	if s < p.RMin() || s > p.RMax() {
		return 0, fmt.Errorf("ft: witness s=%d outside [%d,%d] for edge (%d,%d) r=%d", s, p.RMin(), p.RMax(), x, y, r)
	}
	host := p.NHost()
	if got := num.X(mp.Phi(x), p.M, s, host); got != mp.Phi(y) {
		return 0, fmt.Errorf("ft: X(phi(x)=%d, %d, s=%d, %d) = %d != phi(y)=%d",
			mp.Phi(x), p.M, s, host, got, mp.Phi(y))
	}
	return s, nil
}

// m1 returns m*dx (named helper keeps the witness formula readable
// against the paper: s = kt + r + delta_y - m*delta_x).
func m1(m, dx int) int { return m * dx }
