package ft

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ftnet/internal/num"
)

// This file is the equivalence gate for the compact rank-based Mapping:
// a reference implementation that stores the dense sorted healthy array
// (the pre-compaction representation) is compared bit-for-bit against
// the rank-based one — exhaustively over every fault set on small
// instances, by testing/quick over random (nTarget, nHost, fault-set)
// triples, and along full-budget and repair-heavy event sequences
// driven through Snapshot.Apply.

// denseMapping is the reference: the explicit sorted complement of the
// fault set, exactly what Mapping stored before the compact rewrite.
type denseMapping struct {
	nTarget int
	nHost   int
	faults  []int
	healthy []int
}

func newDense(t testing.TB, nTarget, nHost int, faults []int) *denseMapping {
	t.Helper()
	m, err := NewMapping(nTarget, nHost, faults) // canonicalizes + validates
	if err != nil {
		t.Fatalf("NewMapping(%d, %d, %v): %v", nTarget, nHost, faults, err)
	}
	return &denseMapping{
		nTarget: nTarget,
		nHost:   nHost,
		faults:  m.Faults,
		healthy: num.Complement(m.Faults, nHost),
	}
}

func (d *denseMapping) phi(x int) int { return d.healthy[x] }

func (d *denseMapping) phiSlice() []int {
	out := make([]int, d.nTarget)
	copy(out, d.healthy[:d.nTarget])
	return out
}

func (d *denseMapping) hostToTarget() []int {
	inv := make([]int, d.nHost)
	for i := range inv {
		inv[i] = -1
	}
	for x := 0; x < d.nTarget; x++ {
		inv[d.healthy[x]] = x
	}
	return inv
}

// compare checks every accessor of the compact mapping against the
// dense reference, demanding bit-identical output.
func compare(t *testing.T, m *Mapping, d *denseMapping) {
	t.Helper()
	if m.NumHealthy() != len(d.healthy) {
		t.Fatalf("faults %v: NumHealthy = %d, dense %d", m.Faults, m.NumHealthy(), len(d.healthy))
	}
	for x := 0; x < m.NTarget; x++ {
		if got, want := m.Phi(x), d.phi(x); got != want {
			t.Fatalf("faults %v: Phi(%d) = %d, dense %d", m.Faults, x, got, want)
		}
		if got, want := m.Delta(x), d.phi(x)-x; got != want {
			t.Fatalf("faults %v: Delta(%d) = %d, dense %d", m.Faults, x, got, want)
		}
	}
	for i, v := range d.healthy {
		if got := m.HealthyAt(i); got != v {
			t.Fatalf("faults %v: HealthyAt(%d) = %d, dense %d", m.Faults, i, got, v)
		}
	}
	if got := m.PhiSlice(); !reflect.DeepEqual(got, d.phiSlice()) {
		t.Fatalf("faults %v: PhiSlice = %v, dense %v", m.Faults, got, d.phiSlice())
	}
	wantInv := d.hostToTarget()
	if got := m.HostToTarget(); !reflect.DeepEqual(got, wantInv) {
		t.Fatalf("faults %v: HostToTarget = %v, dense %v", m.Faults, got, wantInv)
	}
	for v := 0; v < m.NHost; v++ {
		if got := m.TargetAt(v); got != wantInv[v] {
			t.Fatalf("faults %v: TargetAt(%d) = %d, dense %d", m.Faults, v, got, wantInv[v])
		}
	}
	if got := m.Healthy(); !reflect.DeepEqual(got, d.healthy) {
		t.Fatalf("faults %v: Healthy = %v, dense %v", m.Faults, got, d.healthy)
	}
	// RangePhi and AppendPhi agree with the slice they replace.
	var ranged []int
	m.RangePhi(func(x, phi int) bool {
		if x != len(ranged) {
			t.Fatalf("faults %v: RangePhi index %d out of order (want %d)", m.Faults, x, len(ranged))
		}
		ranged = append(ranged, phi)
		return true
	})
	if m.NTarget > 0 && !reflect.DeepEqual(ranged, d.phiSlice()) {
		t.Fatalf("faults %v: RangePhi = %v, dense %v", m.Faults, ranged, d.phiSlice())
	}
	buf := make([]int, 0, m.NTarget)
	if got := m.AppendPhi(buf); !reflect.DeepEqual(append([]int{}, got...), append([]int{}, d.phiSlice()...)) {
		t.Fatalf("faults %v: AppendPhi = %v, dense %v", m.Faults, got, d.phiSlice())
	}
}

// TestCompactMatchesDenseExhaustive enumerates every fault subset of
// every small (nTarget, spares) shape — the full input space up to the
// size bound, no sampling.
func TestCompactMatchesDenseExhaustive(t *testing.T) {
	for nTarget := 0; nTarget <= 6; nTarget++ {
		for spares := 0; spares <= 3; spares++ {
			nHost := nTarget + spares
			for k := 0; k <= spares; k++ {
				num.Combinations(nHost, k, func(subset []int) bool {
					m, err := NewMapping(nTarget, nHost, subset)
					if err != nil {
						t.Fatalf("NewMapping(%d, %d, %v): %v", nTarget, nHost, subset, err)
					}
					compare(t, m, newDense(t, nTarget, nHost, subset))
					return true
				})
			}
		}
	}
}

// TestCompactMatchesDenseQuick drives random (nTarget, nHost, faults)
// triples through testing/quick, including hosts far larger than the
// exhaustive bound and full-budget fault sets.
func TestCompactMatchesDenseQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(19920415))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTarget := r.Intn(3000)
		spares := r.Intn(40)
		nHost := nTarget + spares
		k := r.Intn(spares + 1)
		if r.Intn(4) == 0 {
			k = spares // full budget: every spare consumed
		}
		faults := num.RandomSubset(r, nHost, k)
		m, err := NewMapping(nTarget, nHost, faults)
		if err != nil {
			t.Logf("NewMapping(%d, %d, %v): %v", nTarget, nHost, faults, err)
			return false
		}
		compare(t, m, newDense(t, nTarget, nHost, faults))
		return true
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCompactMatchesDenseSequences drives Snapshot.Apply through a
// full-budget fault ramp followed by a repair-heavy drain, comparing
// the published mapping against the dense reference at every epoch —
// the shape a long-lived instance actually produces.
func TestCompactMatchesDenseSequences(t *testing.T) {
	const nTarget, budget = 64, 16
	nHost := nTarget + budget
	rng := rand.New(rand.NewSource(7))

	s, err := NewSnapshot(nTarget, nHost, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(s *Snapshot) {
		compare(t, s.Mapping(), newDense(t, nTarget, nHost, s.Faults()))
	}
	check(s)

	// Full-budget ramp: fault until every spare is consumed.
	for s.NumFaults() < budget {
		for {
			n := rng.Intn(nHost)
			next, err := s.Apply([]Change{{Node: n}}, nil)
			if err != nil {
				continue // double fault; redraw
			}
			s = next
			break
		}
		check(s)
	}
	if s.SparesFree() != 0 {
		t.Fatalf("ramp ended with %d spares free", s.SparesFree())
	}

	// Repair-heavy drain: mostly repairs with occasional re-faults,
	// applied in small batches, down to the zero-fault state.
	for s.NumFaults() > 0 {
		faults := s.Faults()
		batch := []Change{{Node: faults[rng.Intn(len(faults))], Repair: true}}
		if len(faults) >= 3 && rng.Intn(3) == 0 {
			// A mixed batch: two repairs interleaved with one genuinely
			// fresh fault (net -1), so Apply's splice order is
			// equivalence-checked on fault+repair combinations too.
			second := faults[0]
			if batch[0].Node == second {
				second = faults[1]
			}
			fresh := rng.Intn(nHost)
			for num.ContainsSorted(faults, fresh) || fresh == batch[0].Node || fresh == second {
				fresh = rng.Intn(nHost)
			}
			batch = append(batch,
				Change{Node: fresh},
				Change{Node: second, Repair: true})
		}
		next, err := s.Apply(batch, nil)
		if err != nil {
			t.Fatalf("repair batch %v from faults %v: %v", batch, faults, err)
		}
		s = next
		check(s)
	}
	if s.NumFaults() != 0 {
		t.Fatalf("drain ended with %d faults", s.NumFaults())
	}
}
