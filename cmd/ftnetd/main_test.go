package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/journal"
)

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(fleet.NewManager(fleet.Options{})))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

// TestDaemonEndToEnd exercises the full create -> fault -> lookup ->
// repair cycle over HTTP and cross-checks every answer against the
// library's one-shot reconfiguration.
func TestDaemonEndToEnd(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL

	// Create a B^2_{2,4} instance.
	var info fleet.InstanceInfo
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}},
		http.StatusCreated, &info)
	if info.NHost != 18 || info.SparesFree != 2 {
		t.Fatalf("unexpected instance info %+v", info)
	}

	// Fault nodes 3 and 11.
	var res fleet.EventResult
	for i, n := range []int{3, 11} {
		do(t, "POST", base+"/v1/instances/prod/events",
			fleet.Event{Kind: fleet.EventFault, Node: n}, http.StatusOK, &res)
		if res.NumFaults != i+1 {
			t.Fatalf("event %d: %+v", i, res)
		}
	}

	// Every lookup must match ft.NewMapping.
	want, err := ft.NewMapping(16, 18, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		var pr struct{ X, Phi int }
		do(t, "GET", fmt.Sprintf("%s/v1/instances/prod/phi?x=%d", base, x), nil, http.StatusOK, &pr)
		if pr.Phi != want.Phi(x) {
			t.Fatalf("phi(%d) = %d, want %d", x, pr.Phi, want.Phi(x))
		}
	}

	// The full slice agrees too.
	var full struct{ Phi []int }
	do(t, "GET", base+"/v1/instances/prod/phi", nil, http.StatusOK, &full)
	for x, phi := range full.Phi {
		if phi != want.Phi(x) {
			t.Fatalf("slice phi(%d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	// Repair node 3: back to the single-fault mapping.
	do(t, "POST", base+"/v1/instances/prod/events",
		fleet.Event{Kind: fleet.EventRepair, Node: 3}, http.StatusOK, &res)
	if res.NumFaults != 1 {
		t.Fatalf("after repair: %+v", res)
	}
	want, _ = ft.NewMapping(16, 18, []int{11})
	var pr struct{ X, Phi int }
	do(t, "GET", base+"/v1/instances/prod/phi?x=11", nil, http.StatusOK, &pr)
	if pr.Phi != want.Phi(11) {
		t.Fatalf("after repair phi(11) = %d, want %d", pr.Phi, want.Phi(11))
	}

	// Instance snapshot and listing.
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusOK, &info)
	if info.Epoch != 3 || len(info.Faults) != 1 || info.Faults[0] != 11 {
		t.Fatalf("snapshot %+v", info)
	}
	var list struct{ Instances []string }
	do(t, "GET", base+"/v1/instances", nil, http.StatusOK, &list)
	if len(list.Instances) != 1 || list.Instances[0] != "prod" {
		t.Fatalf("list %+v", list)
	}

	// Stats and health.
	var st fleet.Stats
	do(t, "GET", base+"/v1/stats", nil, http.StatusOK, &st)
	if st.Instances != 1 || st.Events != 3 || st.Lookups == 0 {
		t.Fatalf("stats %+v", st)
	}
	do(t, "GET", base+"/healthz", nil, http.StatusOK, nil)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ftnet_instances 1", "ftnet_events_total 3", "ftnet_lookups_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Delete.
	do(t, "DELETE", base+"/v1/instances/prod", nil, http.StatusNoContent, nil)
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusNotFound, nil)
}

// TestDaemonShufflePhiSlice pins that the bulk phi endpoint agrees
// with single lookups for shuffle instances (the slice must be indexed
// by SE target node, composing psi).
func TestDaemonShufflePhiSlice(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "se", "spec": fleet.Spec{Kind: fleet.KindShuffle, H: 4, K: 2}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances/se/events",
		fleet.Event{Kind: fleet.EventFault, Node: 2}, http.StatusOK, nil)

	var full struct{ Phi []int }
	do(t, "GET", base+"/v1/instances/se/phi", nil, http.StatusOK, &full)
	if len(full.Phi) != 16 {
		t.Fatalf("slice length %d, want 16", len(full.Phi))
	}
	for x, want := range full.Phi {
		var pr struct{ X, Phi int }
		do(t, "GET", fmt.Sprintf("%s/v1/instances/se/phi?x=%d", base, x), nil, http.StatusOK, &pr)
		if pr.Phi != want {
			t.Fatalf("phi?x=%d = %d but slice[%d] = %d", x, pr.Phi, x, want)
		}
	}
}

// TestDaemonEventBatch drives the events:batch endpoint end to end:
// an atomic burst advances the epoch exactly once, a partially-invalid
// burst changes nothing, and /v1/stats reports the rejection causes
// and the per-shard cache breakdown.
func TestDaemonEventBatch(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3}},
		http.StatusCreated, nil)

	// A three-fault burst: one transition, epoch 1.
	var res fleet.EventResult
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventFault, Node: 3},
			{Kind: fleet.EventFault, Node: 11},
			{Kind: fleet.EventFault, Node: 7},
		}}, http.StatusOK, &res)
	if res.Epoch != 1 || res.NumFaults != 3 || res.Applied != 3 {
		t.Fatalf("burst result %+v", res)
	}
	want, err := ft.NewMapping(16, 19, []int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	var pr struct{ X, Phi int }
	do(t, "GET", base+"/v1/instances/prod/phi?x=5", nil, http.StatusOK, &pr)
	if pr.Phi != want.Phi(5) {
		t.Fatalf("phi(5) = %d, want %d", pr.Phi, want.Phi(5))
	}

	// A burst that would exceed the budget rejects whole: 409, no change.
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventRepair, Node: 3},
			{Kind: fleet.EventFault, Node: 0},
			{Kind: fleet.EventFault, Node: 1},
			{Kind: fleet.EventFault, Node: 2},
		}}, http.StatusConflict, nil)
	var info fleet.InstanceInfo
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusOK, &info)
	if info.Epoch != 1 || len(info.Faults) != 3 {
		t.Fatalf("rejected burst changed state: %+v", info)
	}

	// Empty and malformed batches are 400.
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{}, http.StatusBadRequest, nil)
	// Unknown instance is 404.
	do(t, "POST", base+"/v1/instances/ghost/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{{Kind: fleet.EventFault, Node: 0}}},
		http.StatusNotFound, nil)

	// Stats carry the batch counter, the rejection causes, and the
	// per-shard cache breakdown.
	var st fleet.Stats
	do(t, "GET", base+"/v1/stats", nil, http.StatusOK, &st)
	if st.Batches != 1 || st.Events != 3 {
		t.Errorf("batches/events = %d/%d, want 1/3", st.Batches, st.Events)
	}
	if st.RejectedBy.Budget != 1 || st.Rejected != 1 {
		t.Errorf("rejected = %d by %+v, want budget 1", st.Rejected, st.RejectedBy)
	}
	if len(st.Cache.Shards) == 0 {
		t.Errorf("stats missing per-shard cache breakdown: %+v", st.Cache)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ftnet_event_batches_total 1",
		`ftnet_events_rejected_by_cause_total{cause="budget"} 1`,
		`ftnet_cache_shard_size{shard="0"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// bootJournaled runs the daemon's exact journal boot sequence
// (openJournal: recover, truncate torn tail, attach append writer) and
// serves the real handler over it.
func bootJournaled(t *testing.T, path string) (*fleet.Manager, *journal.Writer, *httptest.Server) {
	t.Helper()
	mgr := fleet.NewManager(fleet.Options{})
	jw, err := openJournal(mgr, path, "always", journal.DefaultSyncInterval, t.Logf)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	ts := httptest.NewServer(newServer(mgr))
	t.Cleanup(ts.Close)
	return mgr, jw, ts
}

// TestDaemonJournalCrashRecovery is the acceptance check at daemon
// granularity: drive a journaled daemon through creates, bursts,
// repairs and a delete, "crash" it (the writer is abandoned, never
// closed — with -fsync always everything acknowledged is already on
// disk), boot a second daemon over the same journal, and require every
// instance back at its exact pre-kill epoch, fault set, and Phi —
// bit-identical against both the live pre-crash state and a fresh
// ft.NewMapping recomputation. A third boot after scribbling garbage
// on the tail must log, truncate, and preserve the same state.
func TestDaemonJournalCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	mgr1, _, ts1 := bootJournaled(t, path)
	base := ts1.URL

	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "se", "spec": fleet.Spec{Kind: fleet.KindShuffle, H: 4, K: 2}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "scratch", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 3, K: 1}},
		http.StatusCreated, nil)

	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventFault, Node: 3},
			{Kind: fleet.EventFault, Node: 11},
			{Kind: fleet.EventFault, Node: 7},
		}}, http.StatusOK, nil)
	do(t, "POST", base+"/v1/instances/prod/events",
		fleet.Event{Kind: fleet.EventRepair, Node: 7}, http.StatusOK, nil)
	do(t, "POST", base+"/v1/instances/se/events",
		fleet.Event{Kind: fleet.EventFault, Node: 2}, http.StatusOK, nil)
	// A rejected burst must leave no trace in the journal.
	do(t, "POST", base+"/v1/instances/se/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventFault, Node: 0},
			{Kind: fleet.EventFault, Node: 1},
			{Kind: fleet.EventFault, Node: 3},
		}}, http.StatusConflict, nil)
	do(t, "DELETE", base+"/v1/instances/scratch", nil, http.StatusNoContent, nil)

	// SIGKILL equivalent: no Close, no flush beyond what -fsync always
	// already guaranteed per acknowledged request.
	ts1.Close()

	mgr2, _, ts2 := bootJournaled(t, path)
	checkSameFleet(t, mgr1, mgr2)
	if _, ok := mgr2.Get("scratch"); ok {
		t.Error("deleted instance resurrected by recovery")
	}

	// The recovered daemon keeps serving and journaling: one more event
	// must land on the recovered epoch chain.
	var res fleet.EventResult
	do(t, "POST", ts2.URL+"/v1/instances/prod/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusOK, &res)
	if want := mustSnap(t, mgr1, "prod").Epoch() + 1; res.Epoch != want {
		t.Errorf("post-recovery epoch %d, want %d", res.Epoch, want)
	}

	// Stats surface the journal and recovery counters.
	var st fleet.Stats
	do(t, "GET", ts2.URL+"/v1/stats", nil, http.StatusOK, &st)
	if !st.Journal.Enabled || st.Journal.Records == 0 {
		t.Errorf("journal stats %+v, want enabled with fresh records", st.Journal)
	}
	// 7 records survived the crash: 3 creates, 3 accepted transitions,
	// 1 delete — the rejected burst appended nothing.
	if st.Journal.Recovery == nil || st.Journal.Recovery.Records != 7 || st.Journal.Recovery.Torn {
		t.Errorf("recovery stats %+v, want 7 clean records", st.Journal.Recovery)
	}
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ftnet_journal_enabled 1", "ftnet_journal_recovered_records 7", "ftnet_journal_last_epoch"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	ts2.Close()

	// Crash No. 2, this time with a torn tail: garbage appended to the
	// file (a record the "crash" cut mid-write). Boot three must drop
	// exactly the garbage and keep every complete record.
	sizeBefore := fileSize(t, path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe})
	f.Close()

	mgr3, _, _ := bootJournaled(t, path)
	checkSameFleet(t, mgr2, mgr3)
	if got := fileSize(t, path); got != sizeBefore {
		t.Errorf("torn tail not truncated: file %d bytes, want %d", got, sizeBefore)
	}
	if rec := mgr3.Stats().Journal.Recovery; rec == nil || !rec.Torn || rec.Records != 8 {
		t.Errorf("boot over torn tail reported %+v, want Torn with 8 records", rec)
	}
}

// checkSameFleet asserts two managers hold bit-identical fleets:
// same ids, and per instance the same epoch, fault set, and full phi
// slice, with the mapping re-verified against ft.NewMapping.
func checkSameFleet(t *testing.T, want, got *fleet.Manager) {
	t.Helper()
	wids, gids := want.List(), got.List()
	if fmt.Sprint(wids) != fmt.Sprint(gids) {
		t.Fatalf("instances %v, want %v", gids, wids)
	}
	for _, id := range wids {
		ws := mustSnap(t, want, id)
		gs := mustSnap(t, got, id)
		if ws.Epoch() != gs.Epoch() {
			t.Errorf("%s: epoch %d, want %d", id, gs.Epoch(), ws.Epoch())
		}
		wf, gf := ws.Faults(), gs.Faults()
		if fmt.Sprint(wf) != fmt.Sprint(gf) {
			t.Errorf("%s: faults %v, want %v", id, gf, wf)
		}
		fresh, err := ft.NewMapping(ws.NTarget(), ws.NHost(), wf)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for x := 0; x < ws.NTarget(); x++ {
			if ws.Phi(x) != gs.Phi(x) || gs.Phi(x) != fresh.Phi(x) {
				t.Fatalf("%s: phi(%d): live %d, recovered %d, recomputed %d",
					id, x, ws.Phi(x), gs.Phi(x), fresh.Phi(x))
			}
		}
	}
}

func mustSnap(t *testing.T, m *fleet.Manager, id string) *ft.Snapshot {
	t.Helper()
	in, ok := m.Get(id)
	if !ok {
		t.Fatalf("instance %s missing", id)
	}
	return in.Snapshot()
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestDaemonJournalFsyncFlagParsing pins the flag surface: bad -fsync
// values fail the boot, good ones boot with the right policy.
func TestDaemonJournalFsyncFlagParsing(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	if _, err := openJournal(mgr, filepath.Join(t.TempDir(), "j"), "sometimes", time.Second, t.Logf); err == nil {
		t.Error("openJournal accepted -fsync sometimes")
	}
	for _, mode := range []string{"always", "interval", "never"} {
		jw, err := openJournal(fleet.NewManager(fleet.Options{}), filepath.Join(t.TempDir(), "j"), mode, 10*time.Millisecond, t.Logf)
		if err != nil {
			t.Errorf("-fsync %s: %v", mode, err)
			continue
		}
		jw.Close()
	}
	// No -journal: durability off, no writer.
	if jw, err := openJournal(mgr, "", "always", time.Second, t.Logf); err != nil || jw != nil {
		t.Errorf("empty -journal: writer %v, err %v; want nil, nil", jw, err)
	}
}

// TestDaemonPhiGzip pins the dense endpoint's content negotiation:
// with Accept-Encoding: gzip the stream is gzip-compressed (and much
// smaller), without it plain JSON — and both decode to the same slice.
func TestDaemonPhiGzip(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "big", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 10, K: 4}},
		http.StatusCreated, nil)

	var plain struct{ Phi []int }
	do(t, "GET", base+"/v1/instances/big/phi", nil, http.StatusOK, &plain)
	if len(plain.Phi) != 1024 {
		t.Fatalf("plain slice has %d entries", len(plain.Phi))
	}

	req, _ := http.NewRequest("GET", base+"/v1/instances/big/phi", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	// A manual Accept-Encoding disables the transport's transparent
	// decompression: we see the raw compressed body.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 near-sequential integers compress drastically below their
	// ~5KB JSON form.
	if len(raw) >= 2048 {
		t.Errorf("gzip body is %d bytes; compression seems off", len(raw))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var gzipped struct{ Phi []int }
	if err := json.NewDecoder(zr).Decode(&gzipped); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gzipped.Phi) != fmt.Sprint(plain.Phi) {
		t.Error("gzip and plain phi slices differ")
	}
}

// TestDaemonCompactEndpoint drives POST /v1/compact end to end over a
// journaled daemon: the journal shrinks to checkpoint+suffix, a
// restart replays the bounded log to identical state, and the commit
// counters surface the compaction.
func TestDaemonCompactEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	mgr1, _, ts1 := bootJournaled(t, path)
	base := ts1.URL

	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3}},
		http.StatusCreated, nil)
	for i, n := range []int{3, 11, 7, 3, 11} {
		kind := fleet.EventFault
		if i >= 3 {
			kind = fleet.EventRepair
		}
		do(t, "POST", base+"/v1/instances/prod/events",
			fleet.Event{Kind: kind, Node: n}, http.StatusOK, nil)
	}

	var cs fleet.CompactStats
	do(t, "POST", base+"/v1/compact", nil, http.StatusOK, &cs)
	if cs.Instances != 1 || cs.Seq != 6 {
		t.Fatalf("compact stats %+v, want 1 instance at seq 6", cs)
	}
	// One event after the compaction: the suffix.
	do(t, "POST", base+"/v1/instances/prod/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusOK, nil)

	var st struct {
		Commit struct {
			Compactions uint64 `json:"compactions"`
			LastSeq     uint64 `json:"last_seq"`
			Base        uint64 `json:"base"`
		} `json:"commit"`
	}
	do(t, "GET", base+"/v1/stats", nil, http.StatusOK, &st)
	if st.Commit.Compactions != 1 || st.Commit.Base != 7 || st.Commit.LastSeq != 7 {
		t.Errorf("commit stats after compaction: %+v", st.Commit)
	}
	ts1.Close()

	mgr2, _, _ := bootJournaled(t, path)
	checkSameFleet(t, mgr1, mgr2)
	// Bounded replay: seq marker + 1 checkpoint + 1 suffix event.
	if rec := mgr2.Stats().Journal.Recovery; rec == nil || rec.Records != 3 || rec.Checkpoints != 1 {
		t.Errorf("recovery after compaction: %+v, want 3 records incl. 1 checkpoint", rec)
	}
}

func TestDaemonErrorPaths(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL

	// Malformed body / bad spec.
	req, _ := http.NewRequest("POST", base+"/v1/instances", strings.NewReader("{"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed create = %d, want 400", resp.StatusCode)
	}
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: "torus", H: 4}},
		http.StatusBadRequest, nil)

	// Unknown instance everywhere.
	do(t, "GET", base+"/v1/instances/ghost", nil, http.StatusNotFound, nil)
	do(t, "GET", base+"/v1/instances/ghost/phi?x=0", nil, http.StatusNotFound, nil)
	do(t, "POST", base+"/v1/instances/ghost/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusNotFound, nil)
	do(t, "DELETE", base+"/v1/instances/ghost", nil, http.StatusNotFound, nil)

	// Budget exhaustion is a conflict, duplicate create too.
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 1}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 1}},
		http.StatusConflict, nil)
	do(t, "POST", base+"/v1/instances/x/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusOK, nil)
	do(t, "POST", base+"/v1/instances/x/events",
		fleet.Event{Kind: fleet.EventFault, Node: 1}, http.StatusConflict, nil)

	// Bad lookup arguments.
	do(t, "GET", base+"/v1/instances/x/phi?x=abc", nil, http.StatusBadRequest, nil)
	do(t, "GET", base+"/v1/instances/x/phi?x=99", nil, http.StatusBadRequest, nil)
}

// TestPprofMux pins the -pprof-addr contract: the profiling handlers
// live on their own mux (index and the named profiles answer 200 with
// recognizable content), and the API handler serves none of them — so
// enabling profiling never widens the API surface.
func TestPprofMux(t *testing.T) {
	pp := httptest.NewServer(pprofMux())
	defer pp.Close()
	for path, want := range map[string]string{
		"/debug/pprof/":          "Types of profiles available",
		"/debug/pprof/cmdline":   "ftnetd",
		"/debug/pprof/goroutine": "goroutine",
	} {
		resp, err := http.Get(pp.URL + path + "?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if path != "/debug/pprof/cmdline" && !strings.Contains(string(raw), want) {
			t.Errorf("GET %s: body %q does not mention %q", path, raw, want)
		}
	}

	api := newTestDaemon(t)
	resp, err := http.Get(api.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("API mux serves /debug/pprof/ with %d, want 404", resp.StatusCode)
	}
}
