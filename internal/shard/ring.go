// Package shard maps the instance space onto a fleet of daemons: a
// consistent-hash ring decides which daemon owns which instance id,
// and a canonical migration-stream codec carries one instance's state
// (checkpoint record + journal suffix) between daemons when ownership
// moves.
//
// Everything here must be deterministic across processes: every daemon
// and every client builds the ring from the same member list and must
// agree on every owner, so the hash is FNV-1a (fixed, seedless), not
// maphash. Ring values are immutable — a membership change builds a
// new ring — which is what makes the minimal-movement property easy to
// state and test: between New(members) and New(members ∪ {x}), the
// only keys whose owner changes are those x now owns.
package shard

import (
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per member when none is
// configured. At 128 vnodes the max/min load ratio across members
// stays within a small constant factor (the property test pins a
// bound), while keeping ring construction trivially cheap.
const DefaultReplicas = 128

// fnv-1a 64-bit constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix64 is a murmur3-style finalizer. FNV-1a alone barely avalanches
// into the high bits for short keys with sequential suffixes (vnode
// keys "m#0".."m#127" land clustered on the ring, ruining balance);
// the finalizer spreads every input bit across the whole word.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnvString hashes s with finalized FNV-1a (deterministic across
// processes).
func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// fnvBytes is fnvString for a byte slice (the wire plane's zero-copy
// id path); it allocates nothing.
func fnvBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a set of member
// names. The zero value is not usable; build one with New. All methods
// are safe for concurrent use (the ring never mutates).
type Ring struct {
	replicas int
	points   []point  // sorted by hash
	members  []string // sorted, deduplicated
}

// New builds a ring over members with the given virtual-node count per
// member (<= 0 selects DefaultReplicas). Duplicate member names
// collapse; an empty member set yields a ring whose Owner returns "".
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	r := &Ring{replicas: replicas}
	for m := range set {
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.points = make([]point, 0, len(r.members)*replicas)
	for _, m := range r.members {
		for v := 0; v < replicas; v++ {
			// The vnode key is "member#v": deterministic, and distinct
			// members cannot collide into each other's vnode keys unless
			// their names already embed a "#" collision, which the sorted
			// order still resolves deterministically.
			r.points = append(r.points, point{hash: fnvString(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member names (shared slice; do not
// mutate).
func (r *Ring) Members() []string { return r.members }

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// ownerOf finds the first vnode at or after h, wrapping at the top.
func (r *Ring) ownerOf(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owner returns the member that owns instance id ("" on an empty
// ring). Deterministic: every process building the same ring agrees.
func (r *Ring) Owner(id string) string { return r.ownerOf(fnvString(id)) }

// OwnerBytes is Owner for an id held as a byte slice (the binary wire
// plane decodes ids as payload subslices); it allocates nothing.
func (r *Ring) OwnerBytes(id []byte) string { return r.ownerOf(fnvBytes(id)) }
