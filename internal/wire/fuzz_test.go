package wire

import (
	"bytes"
	"testing"

	"ftnet/internal/fleet"
)

// FuzzWireDecode pins the codec's two safety properties on arbitrary
// bytes: neither decoder ever panics, and the accepted language is
// exactly the canonical encodings — any payload a decoder accepts must
// re-encode byte-for-byte, so there are no two wire forms of one
// message (the journal codec's discipline, applied to the RPC plane).
func FuzzWireDecode(f *testing.F) {
	seed := [][]byte{
		{}, {Version}, {Version, byte(MsgLookup)},
		{0xff, 0xff, 0xff, 0xff},
	}
	reqs := []Request{
		{Type: MsgLookup, Seq: 1, ID: "prod", X: 7},
		{Type: MsgLookupBatch, Seq: 9, ID: "a", Xs: []int{0, 1, 2, 1 << 20}},
		{Type: MsgLookupBatch, Seq: 0, ID: "empty"},
		{Type: MsgApplyBatch, Seq: 1 << 40, ID: "x", Events: []fleet.Event{
			{Kind: fleet.EventFault, Node: 3}, {Kind: fleet.EventRepair, Node: 0},
		}},
		{Version: Version, Type: MsgLookup, Seq: 2, ID: "pre-shard", X: 1},
	}
	for _, r := range reqs {
		b, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, b)
	}
	resps := []Response{
		{Type: MsgLookup, Seq: 1, Phi: 5, Epoch: 3},
		{Type: MsgLookup, Seq: 2, Status: StatusNotFound, Msg: "no such instance"},
		{Type: MsgLookupBatch, Seq: 3, Epoch: 9, Phis: []int{4, 4, 0}},
		{Type: MsgApplyBatch, Seq: 4, Result: fleet.EventResult{Epoch: 2, NumFaults: 1, Budget: 3, Applied: 2}},
		{Type: MsgApplyBatch, Seq: 5, Status: StatusReadOnly, Msg: "read-only follower"},
		{Type: MsgApplyBatch, Seq: 6, Status: StatusWrongShard, Msg: "owned by shard b", Owner: "http://b:8100"},
		{Version: Version, Type: MsgLookup, Seq: 7, Status: StatusReadOnly, Msg: "owned by shard b (owner http://b:8100)"},
		{Version: Version, Type: MsgLookup, Seq: 8, Phi: 2, Epoch: 1},
	}
	for _, r := range resps {
		b, err := AppendResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, b)
	}
	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		if req, err := DecodeRequest(b); err == nil {
			out, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("accepted request %+v does not re-encode: %v", req, err)
			}
			if !bytes.Equal(out, b) {
				t.Fatalf("request round-trip mismatch:\n in  %x\n out %x", b, out)
			}
		}
		if resp, err := DecodeResponse(b); err == nil {
			out, err := AppendResponse(nil, resp)
			if err != nil {
				t.Fatalf("accepted response %+v does not re-encode: %v", resp, err)
			}
			if !bytes.Equal(out, b) {
				t.Fatalf("response round-trip mismatch:\n in  %x\n out %x", b, out)
			}
		}
	})
}

// TestWireCodecRoundTrip is the deterministic subset of the fuzz
// property, so a plain `go test` run still pins encode/decode equality
// for representative messages of every type.
func TestWireCodecRoundTrip(t *testing.T) {
	reqs := []Request{
		{Type: MsgLookup, Seq: 42, ID: "prod-0", X: 0},
		{Type: MsgLookupBatch, Seq: 7, ID: "i", Xs: []int{5, 5, 5}},
		{Type: MsgApplyBatch, Seq: 1, ID: "k", Events: []fleet.Event{{Kind: fleet.EventFault, Node: 12}}},
	}
	for _, r := range reqs {
		b, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Type != r.Type || got.Seq != r.Seq || got.ID != r.ID || got.X != r.X ||
			len(got.Xs) != len(r.Xs) || len(got.Events) != len(r.Events) {
			t.Fatalf("request round-trip: got %+v, want %+v", got, r)
		}
	}
	resps := []Response{
		{Type: MsgLookup, Seq: 3, Phi: 9, Epoch: 4},
		{Type: MsgLookupBatch, Seq: 8, Status: StatusBudget, Msg: "fleet: fault budget exhausted"},
		{Type: MsgApplyBatch, Seq: 2, Result: fleet.EventResult{Epoch: 6, NumFaults: 2, Budget: 1, Applied: 4}},
		{Type: MsgLookup, Seq: 9, Status: StatusWrongShard, Msg: "owned by shard b", Owner: "http://b:8100"},
	}
	for _, r := range resps {
		b, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResponse(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Type != r.Type || got.Seq != r.Seq || got.Status != r.Status ||
			got.Msg != r.Msg || got.Owner != r.Owner || got.Phi != r.Phi || got.Epoch != r.Epoch ||
			got.Result != r.Result {
			t.Fatalf("response round-trip: got %+v, want %+v", got, r)
		}
	}

	// Canonical-form rejections: a non-minimal uvarint and trailing
	// bytes must both fail, or two byte strings would mean one message.
	good, _ := AppendRequest(nil, Request{Type: MsgLookup, Seq: 1, ID: "a", X: 0})
	if _, err := DecodeRequest(append(good, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	nonMinimal := []byte{Version, byte(MsgLookup), 0x80, 0x00, 1, 'a', 0}
	if _, err := DecodeRequest(nonMinimal); err == nil {
		t.Fatal("non-minimal uvarint accepted")
	}
}
