package ftnet

import (
	"path/filepath"
	"testing"
)

// TestFleetFacade walks the create -> fault -> lookup -> repair cycle
// through the public facade and cross-checks against the one-shot
// Reconfigure API.
func TestFleetFacade(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	spec := FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{3, 11} {
		if _, err := mgr.Event("prod", FleetEvent{Kind: FleetFault, Node: f}); err != nil {
			t.Fatal(err)
		}
	}

	net, err := NewDeBruijn2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		phi, err := mgr.Lookup("prod", x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want.Phi(x) {
			t.Fatalf("Lookup(prod, %d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	if _, err := mgr.Event("prod", FleetEvent{Kind: FleetRepair, Node: 3}); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Instances != 1 || st.Events != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFleetFacadeBatchAndSnapshot drives an atomic burst through the
// facade and pins the snapshot contract: one epoch per transition, and
// a held FleetSnapshot keeps answering for its epoch.
func TestFleetFacadeBatchAndSnapshot(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	if _, err := mgr.Create("prod", FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := mgr.EventBatch("prod", []FleetEvent{
		{Kind: FleetFault, Node: 3},
		{Kind: FleetFault, Node: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NumFaults != 2 || res.Applied != 2 {
		t.Fatalf("batch result %+v", res)
	}
	in, _ := mgr.Get("prod")
	var held *FleetSnapshot = in.Snapshot()
	if _, err := mgr.Event("prod", FleetEvent{Kind: FleetFault, Node: 5}); err != nil {
		t.Fatal(err)
	}
	if held.Epoch() != 1 || held.NumFaults() != 2 {
		t.Fatalf("held snapshot changed: epoch %d faults %v", held.Epoch(), held.Faults())
	}
	net, err := NewDeBruijn2(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		if held.Phi(x) != want.Phi(x) {
			t.Fatalf("held snapshot Phi(%d) = %d, want %d", x, held.Phi(x), want.Phi(x))
		}
	}
}

// TestFleetFacadeCommitStream pins the facade's view of the commit
// pipeline: Subscribe streams every accepted transition as
// FleetCommitEntry values with gap-free sequence numbers, and Compact
// bounds the stream a fresh subscriber replays.
func TestFleetFacadeCommitStream(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	defer mgr.Close()
	sub, err := mgr.Subscribe(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("prod", FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.EventBatch("prod", []FleetEvent{{Kind: FleetFault, Node: 3}}); err != nil {
		t.Fatal(err)
	}
	var entries []FleetCommitEntry
	for len(entries) < 2 {
		e, ok := <-sub.C
		if !ok {
			t.Fatalf("stream closed early: %v", sub.Err())
		}
		entries = append(entries, e)
	}
	if entries[0].Seq != 1 || entries[1].Seq != 2 || entries[1].Rec.Epoch != 1 {
		t.Fatalf("commit entries %+v", entries)
	}
	sub.Close()

	cs, err := mgr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Instances != 1 || cs.Seq != 2 {
		t.Fatalf("compact stats %+v", cs)
	}
}

// TestFleetFacadeJournalRecovery drives a journaled fleet through the
// facade, "crashes" it (no Close), and recovers a second manager from
// the same file to the identical epoch and fault set.
func TestFleetFacadeJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	jw, err := OpenFleetJournal(path, FleetJournalOptions{Sync: FleetSyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewFleetManager(FleetOptions{Journal: jw})
	if _, err := mgr.Create("prod", FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.EventBatch("prod", []FleetEvent{
		{Kind: FleetFault, Node: 3},
		{Kind: FleetFault, Node: 11},
	}); err != nil {
		t.Fatal(err)
	}

	mgr2 := NewFleetManager(FleetOptions{})
	st, err := mgr2.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.Transitions != 1 || st.Torn {
		t.Fatalf("recover stats %+v, want 2 clean records", st)
	}
	in, ok := mgr2.Get("prod")
	if !ok {
		t.Fatal("prod not recovered")
	}
	s := in.Snapshot()
	if s.Epoch() != 1 || s.NumFaults() != 2 {
		t.Fatalf("recovered epoch %d faults %v", s.Epoch(), s.Faults())
	}
	live, _ := mgr.Get("prod")
	for x := 0; x < s.NTarget(); x++ {
		if s.Phi(x) != live.Snapshot().Phi(x) {
			t.Fatalf("recovered Phi(%d) = %d, live says %d", x, s.Phi(x), live.Snapshot().Phi(x))
		}
	}
}
