package fleet

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"ftnet/internal/commit"
	"ftnet/internal/ft"
	"ftnet/internal/journal"
	"ftnet/internal/shuffle"
)

// pipeline is the manager-wide commit machinery every instance shares:
// the ordered commit log (journal + snapshot publish + subscriber
// fan-out) and the compaction gate. Writers hold the gate shared for
// the duration of one commit; Compact holds it exclusive, so a
// checkpoint always captures a drained, fully-flushed fleet. Lock
// order: gate, then shard/writer mutexes, then the log's own lock.
type pipeline struct {
	gate sync.RWMutex
	log  *commit.Log
}

// newPipeline returns a memory-only pipeline (tests and non-durable
// managers); NewManager attaches a journal writer via the log.
func newPipeline() *pipeline {
	return &pipeline{log: commit.NewLog(commit.Config{})}
}

// Instance is the live state machine for one fault-tolerant network.
// It consumes Fault/Repair events, validates them against the spare
// budget k, and publishes the resulting state as an immutable
// ft.Snapshot behind an atomic pointer, so the read path never blocks
// the write path (and vice versa): Lookup is a pointer load plus an
// array index — no mutex, no read lock.
//
// Writers serialize on a small mutex, derive the next snapshot
// copy-on-write (one O(k) sorted insert or delete per event), and
// fetch the full mapping through the shared sharded Cache, so
// instances that see the same fault pattern share one ft.NewMapping
// computation. A whole batch of events is validated and applied as one
// atomic transition: all-or-nothing, epoch +1, committed through the
// manager's shared commit pipeline — which journals the record, waits
// for durability, publishes the snapshot pointer, and fans the entry
// out to watch/replication subscribers, in that order.
type Instance struct {
	id      string
	spec    Spec
	nTarget int
	nHost   int
	psi     []int // SE->dB embedding for KindShuffle, nil otherwise

	cache *Cache
	pipe  *pipeline // shared commit pipeline; never nil

	snap    atomic.Pointer[ft.Snapshot] // current state; never nil
	writeMu sync.Mutex                  // serializes event application only
	deleted bool                        // set by Manager.Delete; guarded by writeMu

	// Migration state. migrating is the outbound write fence: set under
	// writeMu when the journal suffix is captured, so a write that
	// passed the manager's ownership check before the cutover still
	// cannot apply — it is redirected to migrateTo (the new owner's
	// URL) instead. staged marks an inbound instance whose checkpoint
	// arrived but whose handoff has not committed: reads and writes get
	// ErrUnavailable (retry shortly), never a stale answer.
	migrating bool   // guarded by writeMu
	migrateTo string // owner URL for fenced writes; guarded by writeMu
	staged    atomic.Bool
	stagedAt  uint64 // source commit seq of the staged checkpoint; guarded by writeMu

	rejectedBudget   atomic.Uint64 // events refused: budget exhausted
	rejectedConflict atomic.Uint64 // events refused: double fault / repair healthy
	rejectedInvalid  atomic.Uint64 // events refused: unknown node or kind
	lookups          stripedCounter
}

// stripedCounter spreads a hot counter over cache-line-padded stripes
// so parallel Lookup callers do not serialize on one cache line; the
// stripe is picked from the lookup argument, which varies across
// callers. Load sums the stripes (approximate under concurrency, like
// any stats counter).
type stripedCounter struct {
	stripes [8]struct {
		n atomic.Uint64
		_ [56]byte // pad to a 64-byte cache line
	}
}

func (c *stripedCounter) Add(key int) { c.stripes[key&7].n.Add(1) }

// AddN counts a whole batch with one atomic (the vectorized lookup
// path).
func (c *stripedCounter) AddN(key, n int) { c.stripes[key&7].n.Add(uint64(n)) }

func (c *stripedCounter) Load() uint64 {
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].n.Load()
	}
	return sum
}

// newInstance builds the instance in its zero-fault state. The cache
// and pipeline must be non-nil; both are shared across the manager's
// instances.
func newInstance(id string, spec Spec, cache *Cache, pipe *pipeline) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{id: id, spec: spec, cache: cache, pipe: pipe}
	switch spec.Kind {
	case KindDeBruijn:
		p := ft.Params{M: spec.M, H: spec.H, K: spec.K}
		in.nTarget, in.nHost = p.NTarget(), p.NHost()
	case KindShuffle:
		p := ft.SEParams{H: spec.H, K: spec.K}
		in.nTarget, in.nHost = p.NTarget(), p.NHost()
		psi, err := shuffle.EmbedIntoDeBruijn(spec.H)
		if err != nil {
			return nil, err
		}
		in.psi = psi
	}
	s, err := ft.NewSnapshot(in.nTarget, in.nHost, spec.K, cache.Get)
	if err != nil {
		return nil, err
	}
	in.snap.Store(s)
	return in, nil
}

// ID returns the instance identifier.
func (in *Instance) ID() string { return in.id }

// Spec returns the topology spec the instance was created with.
func (in *Instance) Spec() Spec { return in.spec }

// Apply consumes one fault or repair event. Invalid events — unknown
// kind, node out of range, faulting an already-faulty node, exceeding
// the budget k, repairing a healthy node — are rejected with an error
// and leave the state untouched.
func (in *Instance) Apply(ev Event) (EventResult, error) {
	return in.ApplyBatch([]Event{ev})
}

// ApplyBatch consumes a whole fault burst as one atomic transition:
// the batch is validated in order against the evolving fault set, and
// either every event applies and the epoch advances by exactly one, or
// the first invalid event rejects the entire batch and the published
// snapshot is unchanged. Readers concurrently observe either the old
// epoch or the new one, never a partial burst.
func (in *Instance) ApplyBatch(events []Event) (EventResult, error) {
	if len(events) == 0 {
		return in.reject(&in.rejectedInvalid, nil, "empty event batch")
	}
	batch := make([]ft.Change, len(events))
	for i, ev := range events {
		switch ev.Kind {
		case EventFault:
			batch[i] = ft.Change{Node: ev.Node}
		case EventRepair:
			batch[i] = ft.Change{Node: ev.Node, Repair: true}
		default:
			return in.reject(&in.rejectedInvalid, nil, "unknown event kind %q", ev.Kind)
		}
	}

	in.pipe.gate.RLock()
	defer in.pipe.gate.RUnlock()
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	// A writer that raced Manager.Delete (it held this *Instance from
	// before the removal) must not apply — and above all must not
	// commit a transition record after the instance's delete record,
	// which would poison recovery of a reused id.
	if in.deleted {
		return EventResult{}, errorf(ErrNotFound, "fleet: instance %s deleted", in.id)
	}
	// The migration write fence: a writer that resolved ownership before
	// the cutover re-checks here, under the same mutex the fence was
	// taken under — so a write is either fully applied before the fence
	// (acked, in the shipped suffix) or redirected, never silently
	// dropped or double-applied.
	if in.migrating {
		return EventResult{}, wrongShardf(in.migrateTo,
			"fleet: instance %s migrated to %s", in.id, in.migrateTo)
	}
	if in.staged.Load() {
		return EventResult{}, errorf(ErrUnavailable,
			"fleet: instance %s is arriving (migration staged)", in.id)
	}
	next, err := in.snap.Load().Apply(batch, in.cache.Get)
	if err != nil {
		switch {
		case errors.Is(err, ft.ErrBudget):
			return in.reject(&in.rejectedBudget, ErrBudget, "%v", err)
		case errors.Is(err, ft.ErrConflict):
			return in.reject(&in.rejectedConflict, ErrConflict, "%v", err)
		default:
			return in.reject(&in.rejectedInvalid, nil, "%v", err)
		}
	}
	// One ordered commit, still under the writer mutex: the pipeline
	// journals the record, waits until it is durable (per the writer's
	// fsync policy), publishes the snapshot pointer, and only then fans
	// the entry out to subscribers — so an acknowledged transition is
	// never lost, a recovered journal never trails an epoch a client
	// saw, and no watcher or follower observes an epoch before readers
	// can.
	rec := journal.Record{
		Op:      journal.OpTransition,
		ID:      in.id,
		Epoch:   next.Epoch(),
		Applied: len(events),
		Faults:  next.Mapping().Faults,
	}
	if _, err := in.pipe.log.Commit(rec, func() { in.snap.Store(next) }); err != nil {
		return EventResult{}, errorf(ErrUnavailable,
			"fleet: instance %s: commit: %v", in.id, err)
	}
	return EventResult{
		Epoch:     next.Epoch(),
		NumFaults: next.NumFaults(),
		Budget:    in.spec.K,
		Applied:   len(events),
	}, nil
}

// restoredSnapshot rebuilds the snapshot a journaled (epoch, faults)
// state encodes and verifies it bit-identically against a freshly
// computed ft.NewMapping — the cheap receiver-side check Patra &
// Rangan style record forwarding relies on: corrupted or forged state
// is detected, never accepted. The caller holds writeMu and decides
// whether to publish.
func (in *Instance) restoredSnapshot(epoch uint64, faults []int) (*ft.Snapshot, error) {
	next, err := ft.Restore(in.nTarget, in.nHost, in.spec.K, epoch, faults, in.cache.Get)
	if err != nil {
		return nil, fmt.Errorf("fleet: instance %s: restore epoch %d: %w", in.id, epoch, err)
	}
	fresh, err := ft.NewMapping(in.nTarget, in.nHost, faults)
	if err != nil {
		return nil, fmt.Errorf("fleet: instance %s: recompute epoch %d: %w", in.id, epoch, err)
	}
	got := next.Mapping()
	if got.NTarget != fresh.NTarget || got.NHost != fresh.NHost || !slices.Equal(got.Faults, fresh.Faults) {
		return nil, fmt.Errorf("fleet: instance %s: recovered mapping at epoch %d diverges from recomputation",
			in.id, epoch)
	}
	return next, nil
}

// restore installs the journaled state of one transition record during
// recovery: the epoch must be exactly the successor of the current one
// (accepted transitions advance it by one, so a gap means a corrupt or
// reordered log), and the mapping is verified via restoredSnapshot
// before the snapshot is published. Recovery-path only — it does not
// re-commit the record.
func (in *Instance) restore(epoch uint64, faults []int) error {
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	cur := in.snap.Load()
	if epoch != cur.Epoch()+1 {
		return fmt.Errorf("fleet: instance %s: journal epoch %d follows epoch %d (gap or reorder)",
			in.id, epoch, cur.Epoch())
	}
	next, err := in.restoredSnapshot(epoch, faults)
	if err != nil {
		return err
	}
	in.snap.Store(next)
	return nil
}

// restoreCheckpoint installs a checkpoint record's state: unlike
// restore it accepts any epoch (a checkpoint captures an instance
// mid-history, after the preceding records were compacted away), with
// the same bit-identical mapping verification.
func (in *Instance) restoreCheckpoint(epoch uint64, faults []int) error {
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	next, err := in.restoredSnapshot(epoch, faults)
	if err != nil {
		return err
	}
	in.snap.Store(next)
	return nil
}

// replicate applies one forwarded transition record on a follower: the
// strict epoch chain is enforced, the mapping is verified against a
// fresh recomputation, and the record is committed through the
// follower's own pipeline — journaled locally for restart, published,
// and fanned out to the follower's own subscribers (so watch streams
// chain).
func (in *Instance) replicate(rec journal.Record) error {
	in.pipe.gate.RLock()
	defer in.pipe.gate.RUnlock()
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	if in.deleted {
		return errorf(ErrNotFound, "fleet: instance %s deleted", in.id)
	}
	cur := in.snap.Load()
	if rec.Epoch != cur.Epoch()+1 {
		return fmt.Errorf("fleet: instance %s: replicated epoch %d follows epoch %d (gap or reorder)",
			in.id, rec.Epoch, cur.Epoch())
	}
	next, err := in.restoredSnapshot(rec.Epoch, rec.Faults)
	if err != nil {
		return err
	}
	if _, err := in.pipe.log.Commit(rec, func() { in.snap.Store(next) }); err != nil {
		return errorf(ErrUnavailable, "fleet: instance %s: commit: %v", in.id, err)
	}
	return nil
}

func (in *Instance) reject(counter *atomic.Uint64, category error, format string, args ...any) (EventResult, error) {
	counter.Add(1)
	return EventResult{}, errorf(category, "fleet: instance %s: "+format,
		append([]any{in.id}, args...)...)
}

// Snapshot returns the currently published state. Snapshots are
// immutable, so the result stays valid (for its epoch) after later
// events; it is the unit a persistence journal would record.
func (in *Instance) Snapshot() *ft.Snapshot { return in.snap.Load() }

// Lookup answers "where does target node x run now?": the healthy host
// node currently hosting x. It is safe to call concurrently with
// ApplyBatch and performs no mutex acquisition — one atomic pointer
// load, then an array index into the immutable snapshot.
func (in *Instance) Lookup(x int) (int, error) {
	if x < 0 || x >= in.nTarget {
		return 0, fmt.Errorf("fleet: instance %s: target node %d out of range [0,%d)",
			in.id, x, in.nTarget)
	}
	in.lookups.Add(x)
	if in.psi != nil {
		x = in.psi[x]
	}
	return in.snap.Load().Phi(x), nil
}

// LookupEpoch is Lookup plus the epoch of the snapshot that answered —
// one atomic pointer load covers both, so the pair is consistent.
func (in *Instance) LookupEpoch(x int) (int, uint64, error) {
	if x < 0 || x >= in.nTarget {
		return 0, 0, fmt.Errorf("fleet: instance %s: target node %d out of range [0,%d)",
			in.id, x, in.nTarget)
	}
	in.lookups.Add(x)
	if in.psi != nil {
		x = in.psi[x]
	}
	s := in.snap.Load()
	return s.Phi(x), s.Epoch(), nil
}

// LookupBatch resolves a whole vector of targets against one snapshot:
// phis[i] answers xs[i], and the returned epoch covers the entire
// batch (a concurrent writer's new epoch is seen by all entries or
// none). phis must have len(xs); any out-of-range target rejects the
// batch before any entry is written.
func (in *Instance) LookupBatch(xs, phis []int) (uint64, error) {
	if len(phis) != len(xs) {
		return 0, fmt.Errorf("fleet: instance %s: phis has len %d, want %d", in.id, len(phis), len(xs))
	}
	for _, x := range xs {
		if x < 0 || x >= in.nTarget {
			return 0, fmt.Errorf("fleet: instance %s: target node %d out of range [0,%d)",
				in.id, x, in.nTarget)
		}
	}
	if len(xs) > 0 {
		in.lookups.AddN(xs[0], len(xs))
	}
	s := in.snap.Load()
	if in.psi != nil {
		for i, x := range xs {
			phis[i] = s.Phi(in.psi[x])
		}
	} else {
		for i, x := range xs {
			phis[i] = s.Phi(x)
		}
	}
	return s.Epoch(), nil
}

// NTarget returns the number of target nodes (the valid lookup domain
// [0, NTarget)).
func (in *Instance) NTarget() int { return in.nTarget }

// Mapping returns the current reconfiguration map over host identities.
// Mappings are immutable, so the result stays valid (for its epoch)
// after later events. Note that for KindShuffle the map is indexed by
// de Bruijn identity; use PhiSlice or Lookup for target-indexed
// answers.
func (in *Instance) Mapping() *ft.Mapping { return in.snap.Load().Mapping() }

// PhiSlice returns the full current embedding indexed by target node:
// PhiSlice()[x] is where target node x runs now. For KindShuffle this
// composes the SE->dB embedding psi, agreeing with Lookup.
func (in *Instance) PhiSlice() []int {
	m := in.Mapping()
	if in.psi == nil {
		return m.PhiSlice()
	}
	// Materialize the de Bruijn embedding once, then permute through
	// psi: two O(n) passes instead of n rank searches.
	dense := m.PhiSlice()
	out := make([]int, in.nTarget)
	for x := range out {
		out[x] = dense[in.psi[x]]
	}
	return out
}

// RangePhi calls fn(x, phi) for x = 0, 1, ... in target order against
// one immutable snapshot, stopping early if fn returns false. Unlike
// PhiSlice it materializes nothing — the iterator transports use to
// stream a million-node embedding without building the dense slice.
// For KindShuffle each element costs one O(log k) rank search through
// psi; for KindDeBruijn the whole sweep is O(n + k).
func (in *Instance) RangePhi(fn func(x, phi int) bool) {
	m := in.Mapping()
	if in.psi == nil {
		m.RangePhi(fn)
		return
	}
	for x := 0; x < in.nTarget; x++ {
		if !fn(x, m.Phi(in.psi[x])) {
			return
		}
	}
}

// RangePhiWindow calls fn(x, phi) for x = from, from+1, ...,
// from+count-1 against one immutable snapshot, stopping early if fn
// returns false — the iterator behind the paginated dense endpoint.
// The caller validates the window against NTarget. Unlike RangePhi's
// full sweep, a window answers each element by rank search (O(log k)),
// so a narrow page of a million-node instance costs the page, not the
// instance.
func (in *Instance) RangePhiWindow(from, count int, fn func(x, phi int) bool) {
	m := in.Mapping()
	for x := from; x < from+count; x++ {
		hx := x
		if in.psi != nil {
			hx = in.psi[x]
		}
		if !fn(x, m.Phi(hx)) {
			return
		}
	}
}

// InstanceInfo is a point-in-time snapshot of an instance.
type InstanceInfo struct {
	ID         string        `json:"id"`
	Spec       Spec          `json:"spec"`
	NTarget    int           `json:"n_target"`
	NHost      int           `json:"n_host"`
	Epoch      uint64        `json:"epoch"`
	Faults     []int         `json:"faults"`
	SparesFree int           `json:"spares_free"`
	Rejected   uint64        `json:"rejected_events"`
	RejectedBy RejectedStats `json:"rejected_by_cause"`
	Lookups    uint64        `json:"lookups"`
}

// Info returns a consistent snapshot of the instance state. The
// epoch/fault fields come from one immutable snapshot; the counters
// are read separately and may trail a concurrent writer slightly.
func (in *Instance) Info() InstanceInfo {
	s := in.snap.Load()
	rej := RejectedStats{
		Budget:   in.rejectedBudget.Load(),
		Conflict: in.rejectedConflict.Load(),
		Invalid:  in.rejectedInvalid.Load(),
	}
	return InstanceInfo{
		ID:         in.id,
		Spec:       in.spec,
		NTarget:    in.nTarget,
		NHost:      in.nHost,
		Epoch:      s.Epoch(),
		Faults:     s.Faults(),
		SparesFree: s.SparesFree(),
		Rejected:   rej.Total(),
		RejectedBy: rej,
		Lookups:    in.lookups.Load(),
	}
}
