package ft

import (
	"fmt"
	"sort"

	"ftnet/internal/num"
)

// Mapping is the reconfiguration of Section III-A: the monotone 1-to-1
// assignment of target nodes to non-faulty host nodes. Target node x is
// mapped to the (x+1)-st non-faulty host node, i.e. the unique healthy
// node phi(x) with Rank(phi(x), healthy) = x.
type Mapping struct {
	NTarget int
	NHost   int
	Faults  []int // sorted, distinct
	healthy []int // sorted complement of Faults in [0, NHost)
}

// NewMapping builds the reconfiguration map for the given fault set.
// faults may be in any order; duplicates and out-of-range nodes are
// rejected. The number of faults must not exceed NHost - NTarget (the
// spare budget), or there would be too few healthy nodes left.
func NewMapping(nTarget, nHost int, faults []int) (*Mapping, error) {
	if nTarget < 0 || nHost < nTarget {
		return nil, fmt.Errorf("ft: invalid sizes nTarget=%d nHost=%d", nTarget, nHost)
	}
	f := make([]int, len(faults))
	copy(f, faults)
	sort.Ints(f)
	for i, v := range f {
		if v < 0 || v >= nHost {
			return nil, fmt.Errorf("ft: fault %d out of range [0,%d)", v, nHost)
		}
		if i > 0 && f[i-1] == v {
			return nil, fmt.Errorf("ft: duplicate fault %d", v)
		}
	}
	if len(f) > nHost-nTarget {
		return nil, fmt.Errorf("ft: %d faults exceed spare budget %d", len(f), nHost-nTarget)
	}
	return &Mapping{
		NTarget: nTarget,
		NHost:   nHost,
		Faults:  f,
		healthy: num.Complement(f, nHost),
	}, nil
}

// Phi returns the host node hosting target node x.
func (m *Mapping) Phi(x int) int {
	if x < 0 || x >= m.NTarget {
		panic(fmt.Sprintf("ft: target node %d out of range [0,%d)", x, m.NTarget))
	}
	return m.healthy[x]
}

// PhiSlice returns the full embedding as a slice: PhiSlice()[x] = Phi(x).
// The returned slice is a copy.
func (m *Mapping) PhiSlice() []int {
	out := make([]int, m.NTarget)
	copy(out, m.healthy[:m.NTarget])
	return out
}

// Delta returns phi(x) - x, the displacement of target node x. The
// paper's proof shows 0 <= Delta(x) <= k and that Delta is monotone
// non-decreasing (Lemma 1).
func (m *Mapping) Delta(x int) int { return m.Phi(x) - x }

// HostToTarget returns the inverse assignment: for each host node, the
// target node it hosts, or -1 if it is faulty or an unused spare.
func (m *Mapping) HostToTarget() []int {
	inv := make([]int, m.NHost)
	for i := range inv {
		inv[i] = -1
	}
	for x := 0; x < m.NTarget; x++ {
		inv[m.healthy[x]] = x
	}
	return inv
}

// IsFaulty reports whether host node v is in the fault set.
func (m *Mapping) IsFaulty(v int) bool { return num.ContainsSorted(m.Faults, v) }

// Healthy returns the sorted list of non-faulty host nodes (including
// unused spares beyond the first NTarget). The returned slice is a copy.
func (m *Mapping) Healthy() []int {
	out := make([]int, len(m.healthy))
	copy(out, m.healthy)
	return out
}
