package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/ft"
	"ftnet/internal/journal"
)

// journaledManager boots a manager over a fresh journal file in dir,
// exactly like ftnetd: recover (a no-op here), then attach the writer.
func journaledManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m := NewManager(Options{})
	path := filepath.Join(dir, "epochs.wal")
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(w)
	t.Cleanup(func() { m.Close() })
	return m
}

// startFollower wires a follower manager to a leader URL and runs its
// replication loop until the test ends.
func startFollower(t *testing.T, m *Manager, leaderURL string) *Follower {
	t.Helper()
	f, err := NewFollower(m, leaderURL, FollowerOptions{
		Heartbeat:    50 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		Backoff:      20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go f.Run(ctx)
	return f
}

// waitConverged blocks until the follower's commit position reaches
// the leader's current one.
func waitConverged(t *testing.T, leader, follower *Manager, timeout time.Duration) {
	t.Helper()
	target := leader.CommitLog().LastSeq()
	deadline := time.Now().Add(timeout)
	for follower.CommitLog().LastSeq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower at seq %d, leader at %d after %v",
				follower.CommitLog().LastSeq(), target, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertSameFleet requires two managers to hold bit-identical fleets:
// same ids, epochs, fault sets, and phi slices, each re-verified
// against a fresh ft.NewMapping.
func assertSameFleet(t *testing.T, want, got *Manager) {
	t.Helper()
	wids, gids := want.List(), got.List()
	if fmt.Sprint(wids) != fmt.Sprint(gids) {
		t.Fatalf("instances %v, want %v", gids, wids)
	}
	for _, id := range wids {
		ws := mustGet(t, want, id).Snapshot()
		gs := mustGet(t, got, id).Snapshot()
		if ws.Epoch() != gs.Epoch() {
			t.Fatalf("%s: epoch %d, want %d", id, gs.Epoch(), ws.Epoch())
		}
		if fmt.Sprint(ws.Faults()) != fmt.Sprint(gs.Faults()) {
			t.Fatalf("%s: faults %v, want %v", id, gs.Faults(), ws.Faults())
		}
		fresh, err := ft.NewMapping(ws.NTarget(), ws.NHost(), ws.Faults())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for x := 0; x < ws.NTarget(); x++ {
			if ws.Phi(x) != gs.Phi(x) || gs.Phi(x) != fresh.Phi(x) {
				t.Fatalf("%s: phi(%d): want %d, got %d, recomputed %d",
					id, x, ws.Phi(x), gs.Phi(x), fresh.Phi(x))
			}
		}
	}
}

// stormLeader drives random atomic bursts into the leader from several
// goroutines, recording the highest acknowledged epoch per instance.
func stormLeader(m *Manager, ids []string, nHost, writers, perWriter int, acked map[string]*atomic.Uint64) {
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				id := ids[rng.Intn(len(ids))]
				n := 1 + rng.Intn(3)
				events := make([]Event, n)
				for j := range events {
					kind := EventFault
					if rng.Intn(2) == 0 {
						kind = EventRepair
					}
					events[j] = Event{Kind: kind, Node: rng.Intn(nHost)}
				}
				if res, err := m.EventBatch(id, events); err == nil {
					for {
						cur := acked[id].Load()
						if res.Epoch <= cur || acked[id].CompareAndSwap(cur, res.Epoch) {
							break
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFollowerConvergesUnderWriteStorm is the replication acceptance
// check: a follower started mid-storm converges — every acknowledged
// epoch is present on the follower with a bit-identical phi slice —
// with gap-free, in-order replication (any gap or reorder would fail
// the follower's strict seq/epoch checks and show up as a resync).
func TestFollowerConvergesUnderWriteStorm(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	ts := httptest.NewServer(NewHTTPHandler(leader))
	// Cleanup order (LIFO): the follower's context cancel runs first,
	// ending its watch request, so Close does not wait on a live stream.
	t.Cleanup(ts.Close)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 4}
	_, nHost := TargetHostSizesSpec(spec)
	ids := make([]string, 3)
	acked := make(map[string]*atomic.Uint64)
	for i := range ids {
		ids[i] = fmt.Sprintf("i%d", i)
		if _, err := leader.Create(ids[i], spec); err != nil {
			t.Fatal(err)
		}
		acked[ids[i]] = new(atomic.Uint64)
	}

	// First third of the storm before the follower exists: it must
	// catch up from the journal, then tail the live remainder.
	stormLeader(leader, ids, nHost, 4, 20, acked)

	fm := journaledManager(t, t.TempDir())
	f := startFollower(t, fm, ts.URL)

	stormLeader(leader, ids, nHost, 4, 40, acked)

	waitConverged(t, leader, fm, 15*time.Second)
	assertSameFleet(t, leader, fm)
	for id, a := range acked {
		if got := mustGet(t, fm, id).Snapshot().Epoch(); got < a.Load() {
			t.Errorf("%s: follower epoch %d below acknowledged %d", id, got, a.Load())
		}
	}
	st := f.Stats()
	if st.Resyncs != 0 {
		t.Errorf("follower needed %d resyncs during a plain storm", st.Resyncs)
	}
	if st.Entries == 0 || st.LastSeq != leader.CommitLog().LastSeq() {
		t.Errorf("follower stats %+v, leader seq %d", st, leader.CommitLog().LastSeq())
	}

	// The follower's own journal restarts it to the same state (read
	// from a synced copy: the live writer still owns the file).
	fw := fm.CommitLog().Writer()
	if err := fw.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fw.Path())
	if err != nil {
		t.Fatal(err)
	}
	fm2 := NewManager(Options{})
	if _, err := fm2.Recover(bytes.NewReader(data)); err != nil {
		t.Fatalf("follower journal replay: %v", err)
	}
	assertSameFleet(t, fm, fm2)
}

// abortingHandler wraps a handler and kills every /v1/watch response
// after budget bytes — a torn stream, mid-line more often than not.
func abortingHandler(h http.Handler, budget int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/watch") {
			var used atomic.Int64
			w = &abortWriter{ResponseWriter: w, used: &used, budget: budget}
		}
		h.ServeHTTP(w, r)
	})
}

type abortWriter struct {
	http.ResponseWriter
	used   *atomic.Int64
	budget int64
}

func (a *abortWriter) Write(p []byte) (int, error) {
	if a.used.Add(int64(len(p))) > a.budget {
		panic(http.ErrAbortHandler) // close the connection mid-stream
	}
	return a.ResponseWriter.Write(p)
}

func (a *abortWriter) Flush() {
	if f, ok := a.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestFollowerResumesTornStream cuts the leader connection every ~2KB:
// the follower must reconnect, resume by sequence number (no resync,
// no duplicate application — its strict epoch chain would reject one),
// and still converge bit-identically.
func TestFollowerResumesTornStream(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	ts := httptest.NewServer(abortingHandler(NewHTTPHandler(leader), 2048))
	t.Cleanup(ts.Close)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 6}
	_, nHost := TargetHostSizesSpec(spec)
	ids := []string{"a", "b"}
	acked := make(map[string]*atomic.Uint64)
	for _, id := range ids {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		acked[id] = new(atomic.Uint64)
	}

	fm := journaledManager(t, t.TempDir())
	f := startFollower(t, fm, ts.URL)

	stormLeader(leader, ids, nHost, 4, 100, acked)

	waitConverged(t, leader, fm, 20*time.Second)
	assertSameFleet(t, leader, fm)
	st := f.Stats()
	if st.Reconnects < 2 {
		t.Errorf("stream was cut every 2KB but the follower reconnected only %d times", st.Reconnects)
	}
	if st.Resyncs != 0 {
		t.Errorf("torn streams must resume by seq, not resync (%d resyncs)", st.Resyncs)
	}
}

// TestFreshFollowerAfterCompactionReplaysBounded is the compaction
// acceptance check: after the leader compacts, a freshly started
// follower replays only the bounded checkpoint+suffix — strictly fewer
// records than a follower that replayed the full history — and ends
// bit-identical anyway.
func TestFreshFollowerAfterCompactionReplaysBounded(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	ts := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(ts.Close)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 3}
	_, nHost := TargetHostSizesSpec(spec)
	ids := []string{"a", "b", "c"}
	acked := make(map[string]*atomic.Uint64)
	for _, id := range ids {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		acked[id] = new(atomic.Uint64)
	}
	stormLeader(leader, ids, nHost, 2, 30, acked)

	// Follower A replays the full history.
	fmA := journaledManager(t, t.TempDir())
	fA := startFollower(t, fmA, ts.URL)
	waitConverged(t, leader, fmA, 15*time.Second)
	fullReplay := fA.Stats().Entries
	preCompaction := leader.CommitLog().LastSeq()
	if fullReplay != preCompaction {
		t.Fatalf("follower A received %d entries, leader committed %d", fullReplay, preCompaction)
	}

	if _, err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	// A short suffix after the compaction.
	stormLeader(leader, ids, nHost, 2, 5, acked)

	// Follower B starts fresh: checkpoint + suffix only.
	fmB := journaledManager(t, t.TempDir())
	fB := startFollower(t, fmB, ts.URL)
	waitConverged(t, leader, fmB, 15*time.Second)
	waitConverged(t, leader, fmA, 15*time.Second) // A rides through the compaction live

	boundedReplay := fB.Stats().Entries
	suffix := leader.CommitLog().LastSeq() - preCompaction
	if boundedReplay >= preCompaction+suffix {
		t.Errorf("fresh follower replayed %d records, no fewer than the %d of full history",
			boundedReplay, preCompaction+suffix)
	}
	if want := uint64(len(ids)) + suffix; boundedReplay != want {
		t.Errorf("fresh follower replayed %d records, want checkpoint(%d)+suffix(%d)",
			boundedReplay, len(ids), suffix)
	}
	assertSameFleet(t, leader, fmB)
	assertSameFleet(t, leader, fmA)

	// And a leader restart replays the same bounded log (from a synced
	// copy: the live writer still owns the file).
	lw := leader.CommitLog().Writer()
	if err := lw.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(lw.Path())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Options{})
	st, err := m2.Recover(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(st.Records) >= preCompaction+suffix {
		t.Errorf("leader restart replayed %d records, want fewer than %d", st.Records, preCompaction+suffix)
	}
	assertSameFleet(t, leader, m2)
}

// TestWatchEndpointStreamsAndResumes drives the NDJSON surface
// directly, as curl would: catch-up entries, a live entry, heartbeats,
// resume via ?from, and 416 past the end.
func TestWatchEndpointStreamsAndResumes(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	ts := httptest.NewServer(NewHTTPHandler(m))
	defer ts.Close()

	if _, err := m.Create("prod", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EventBatch("prod", []Event{{EventFault, 3}, {EventFault, 7}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/watch?from=1&heartbeat=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	read := func() WatchEntry {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended: %v", sc.Err())
		}
		var we WatchEntry
		if err := json.Unmarshal(sc.Bytes(), &we); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		return we
	}
	if we := read(); we.Seq != 1 || we.Op != "create" || we.ID != "prod" || we.Spec == nil {
		t.Fatalf("entry 1: %+v", we)
	}
	we := read()
	if we.Seq != 2 || we.Op != "transition" || we.Epoch != 1 || fmt.Sprint(we.Faults) != "[3 7]" {
		t.Fatalf("entry 2: %+v", we)
	}
	// A live commit lands on the open stream.
	if _, err := m.Event("prod", Event{EventRepair, 3}); err != nil {
		t.Fatal(err)
	}
	if we := read(); we.Seq != 3 || we.Epoch != 2 {
		t.Fatalf("live entry: %+v", we)
	}
	// With nothing committed, heartbeats keep the stream alive.
	hb := read()
	for !hb.Heartbeat {
		hb = read()
	}
	if hb.Seq != 3 {
		t.Errorf("heartbeat carries seq %d, want 3", hb.Seq)
	}

	// Resume from the middle: exactly the suffix, no duplicates.
	resp2, err := http.Get(ts.URL + "/v1/watch?from=3&heartbeat=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	if !sc2.Scan() {
		t.Fatal("resume stream ended")
	}
	var we2 WatchEntry
	json.Unmarshal(sc2.Bytes(), &we2)
	if we2.Seq != 3 || we2.Op != "transition" {
		t.Fatalf("resume first entry: %+v", we2)
	}

	// Past the end: 416 with the next seq in the error.
	resp3, err := http.Get(ts.URL + "/v1/watch?from=99")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("from=99 status %d, want 416", resp3.StatusCode)
	}
}

// TestReadOnlyHandlerRejectsMutations pins the follower posture: the
// read-only handler 403s every mutating route but still serves reads
// and the watch stream.
func TestReadOnlyHandlerRejectsMutations(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	if _, err := m.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandlerOpts(m, HandlerOptions{ReadOnly: true}))
	defer ts.Close()

	resp, _ := http.Post(ts.URL+"/v1/instances", "application/json",
		strings.NewReader(`{"id":"x","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}`))
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("create on follower: %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/v1/instances/a/events", "application/json",
		strings.NewReader(`{"kind":"fault","node":1}`))
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("event on follower: %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/v1/instances/a/phi?x=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("lookup on follower: %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
}
