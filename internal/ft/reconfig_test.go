package ft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func TestMappingNoFaultsIsIdentity(t *testing.T) {
	m, err := NewMapping(16, 18, nil)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		if m.Phi(x) != x {
			t.Errorf("Phi(%d) = %d, want identity", x, m.Phi(x))
		}
		if m.Delta(x) != 0 {
			t.Errorf("Delta(%d) = %d", x, m.Delta(x))
		}
	}
}

func TestMappingSkipsFaults(t *testing.T) {
	// Paper example: node 0 maps to the first non-faulty node.
	m, err := NewMapping(16, 17, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phi(0) != 0 {
		t.Errorf("Phi(0) = %d", m.Phi(0))
	}
	if m.Phi(1) != 2 {
		t.Errorf("Phi(1) = %d, want 2 (skip fault at 1)", m.Phi(1))
	}
	if m.Phi(15) != 16 {
		t.Errorf("Phi(15) = %d, want last node", m.Phi(15))
	}
	if !m.IsFaulty(1) || m.IsFaulty(2) {
		t.Error("IsFaulty wrong")
	}
}

func TestMappingErrors(t *testing.T) {
	if _, err := NewMapping(16, 17, []int{1, 5}); err == nil {
		t.Error("too many faults should error")
	}
	if _, err := NewMapping(16, 17, []int{17}); err == nil {
		t.Error("out-of-range fault should error")
	}
	if _, err := NewMapping(16, 18, []int{3, 3}); err == nil {
		t.Error("duplicate fault should error")
	}
	if _, err := NewMapping(16, 15, nil); err == nil {
		t.Error("host smaller than target should error")
	}
	if _, err := NewMapping(-1, 5, nil); err == nil {
		t.Error("negative target should error")
	}
}

func TestMappingUnsortedFaultsAccepted(t *testing.T) {
	m, err := NewMapping(8, 11, []int{9, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Faults[0] != 2 || m.Faults[1] != 5 || m.Faults[2] != 9 {
		t.Errorf("faults not sorted: %v", m.Faults)
	}
}

func TestMappingFewerThanKFaults(t *testing.T) {
	// "given any set of k OR FEWER faults" — partial fault sets work.
	m, err := NewMapping(16, 19, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := DeltaMonotone(m); err != nil {
		t.Error(err)
	}
}

func TestHostToTarget(t *testing.T) {
	m, _ := NewMapping(4, 6, []int{0, 3})
	inv := m.HostToTarget()
	// healthy = {1,2,4,5}; phi: 0->1, 1->2, 2->4, 3->5.
	want := []int{-1, 0, 1, -1, 2, 3}
	for i, v := range want {
		if inv[i] != v {
			t.Fatalf("HostToTarget = %v, want %v", inv, want)
		}
	}
}

func TestPhiSliceMatchesPhi(t *testing.T) {
	m, _ := NewMapping(8, 10, []int{1, 7})
	s := m.PhiSlice()
	for x := 0; x < 8; x++ {
		if s[x] != m.Phi(x) {
			t.Errorf("PhiSlice[%d] = %d != Phi = %d", x, s[x], m.Phi(x))
		}
	}
	// Mutating the returned slice must not affect the mapping.
	s[0] = 99
	if m.Phi(0) == 99 {
		t.Error("PhiSlice aliases internal state")
	}
}

func TestDeltaMonotoneProperty(t *testing.T) {
	// Lemma 1 as a property over random fault sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTarget := rng.Intn(100) + 10
		k := rng.Intn(10)
		faults := num.RandomSubset(rng, nTarget+k, rng.Intn(k+1))
		m, err := NewMapping(nTarget, nTarget+k, faults)
		if err != nil {
			return false
		}
		return DeltaMonotone(m) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiIsStrictlyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTarget := rng.Intn(60) + 5
		k := rng.Intn(8)
		faults := num.RandomSubset(rng, nTarget+k, k)
		m, err := NewMapping(nTarget, nTarget+k, faults)
		if err != nil {
			return false
		}
		for x := 1; x < nTarget; x++ {
			if m.Phi(x) <= m.Phi(x-1) {
				return false
			}
		}
		for x := 0; x < nTarget; x++ {
			if m.IsFaulty(m.Phi(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTheorem1RandomFaults is the headline property: for random fault
// sets of size k, the reconfiguration map embeds B_{2,h} into the
// surviving part of B^k_{2,h}.
func TestTheorem1RandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(20240612))
	for h := 3; h <= 7; h++ {
		for k := 0; k <= 5; k++ {
			p := Params{M: 2, H: h, K: k}
			host := MustNew(p)
			target := debruijn.MustNew(p.Target())
			for trial := 0; trial < 20; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				m, err := NewMapping(p.NTarget(), p.NHost(), faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEmbedding(target, host, m.PhiSlice()); err != nil {
					t.Fatalf("%v faults=%v: %v", p, faults, err)
				}
			}
		}
	}
}

// TestTheorem2RandomFaults: same for base m.
func TestTheorem2RandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(612))
	for _, m := range []int{3, 4, 5} {
		for k := 0; k <= 4; k++ {
			p := Params{M: m, H: 3, K: k}
			host := MustNew(p)
			target := debruijn.MustNew(p.Target())
			for trial := 0; trial < 15; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEmbedding(target, host, mp.PhiSlice()); err != nil {
					t.Fatalf("%v faults=%v: %v", p, faults, err)
				}
			}
		}
	}
}

// TestTheorem1Exhaustive checks EVERY fault set for small parameters —
// the literal statement of (k, G)-tolerance.
func TestTheorem1Exhaustive(t *testing.T) {
	for _, c := range []Params{{2, 3, 1}, {2, 3, 2}, {2, 4, 1}, {3, 3, 1}} {
		host := MustNew(c)
		target := debruijn.MustNew(c.Target())
		faults := make([]int, c.K)
		count := num.Combinations(c.NHost(), c.K, func(subset []int) bool {
			copy(faults, subset)
			m, err := NewMapping(c.NTarget(), c.NHost(), faults)
			if err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			if err := graph.CheckEmbedding(target, host, m.PhiSlice()); err != nil {
				t.Fatalf("%v faults=%v: %v", c, faults, err)
			}
			return true
		})
		want, _ := num.Binomial(c.NHost(), c.K)
		if count != want {
			t.Errorf("%v: checked %d fault sets, want %d", c, count, want)
		}
	}
}

func TestHealthyIsCopy(t *testing.T) {
	m, _ := NewMapping(4, 5, []int{2})
	h := m.Healthy()
	h[0] = 99
	if m.Phi(0) == 99 {
		t.Error("Healthy aliases internal state")
	}
}

func TestPhiPanicsOutOfRange(t *testing.T) {
	m, _ := NewMapping(4, 5, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Phi(4) did not panic")
		}
	}()
	m.Phi(4)
}
