// Package verify checks (k, G)-tolerance claims: that a host graph,
// under a reconfiguration rule, contains the target graph for every
// (or for sampled) fault sets.
//
// The exhaustive verifier enumerates all C(n, k) fault sets and fans the
// work out across CPUs; the randomized verifier samples fault sets from
// configurable adversarial models. Both return a Report with counts and
// the first failure found (verification continues long enough to count
// failures but callers normally treat any failure as fatal).
package verify

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ftnet/internal/fault"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Mapper produces the embedding for a concrete fault set: phi[x] is the
// host node assigned to target node x. buf is an optional scratch
// slice: a mapper should materialize into buf[:0] (growing it as
// needed) and return the result, so verification loops that check
// millions of fault sets reuse one dense buffer per worker instead of
// allocating per set — pass nil when reuse does not matter. Mapper
// must be safe for concurrent use with distinct buffers.
type Mapper func(faults, buf []int) ([]int, error)

// Report summarizes a verification run.
type Report struct {
	Checked int64 // fault sets examined
	Failed  int64 // fault sets for which embedding failed
	First   error // first failure, annotated with its fault set
}

// Ok reports whether no failures were found.
func (r Report) Ok() bool { return r.Failed == 0 }

// String renders a one-line summary.
func (r Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("ok: %d fault sets verified", r.Checked)
	}
	return fmt.Sprintf("FAIL: %d of %d fault sets failed (first: %v)", r.Failed, r.Checked, r.First)
}

// CheckOnce verifies a single fault set.
func CheckOnce(target, host *graph.Graph, faults []int, mapper Mapper) error {
	phi, err := mapper(faults, nil)
	if err != nil {
		return fmt.Errorf("faults %v: %w", faults, err)
	}
	return checkPhi(target, host, faults, phi)
}

// checkPhi validates a materialized embedding: no target lands on a
// faulty host, and the image preserves every target edge. The faulty
// check binary-searches the (sorted) fault set instead of building a
// per-call map; enumerated fault sets arrive sorted, so the hot
// verification loops pay no allocation here.
func checkPhi(target, host *graph.Graph, faults, phi []int) error {
	sorted := faults
	if !sort.IntsAreSorted(sorted) {
		sorted = append(make([]int, 0, len(faults)), faults...)
		sort.Ints(sorted)
	}
	for x, img := range phi {
		if num.ContainsSorted(sorted, img) {
			return fmt.Errorf("faults %v: target %d mapped to faulty host %d", faults, x, img)
		}
	}
	if err := graph.CheckEmbedding(target, host, phi); err != nil {
		return fmt.Errorf("faults %v: %w", faults, err)
	}
	return nil
}

// Exhaustive verifies every k-subset of host nodes as a fault set,
// using all CPUs. For k = 0 it checks the single empty fault set.
func Exhaustive(target, host *graph.Graph, k int, mapper Mapper) Report {
	n := host.N()
	if k == 0 {
		r := Report{Checked: 1}
		if err := CheckOnce(target, host, nil, mapper); err != nil {
			r.Failed = 1
			r.First = err
		}
		return r
	}

	var checked, failed atomic.Int64
	var mu sync.Mutex
	var first error

	record := func(err error) {
		failed.Add(1)
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}

	// Partition the enumeration by the smallest fault f0; workers pull
	// f0 values from a channel and enumerate the remaining k-1 faults
	// above f0.
	work := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			faults := make([]int, k)
			var phiBuf []int // per-worker dense buffer, reused across fault sets
			for f0 := range work {
				faults[0] = f0
				rest := n - f0 - 1
				num.Combinations(rest, k-1, func(subset []int) bool {
					for i, v := range subset {
						faults[i+1] = f0 + 1 + v
					}
					checked.Add(1)
					phi, err := mapper(faults, phiBuf)
					if phi != nil {
						phiBuf = phi // retain the grown buffer
					}
					if err != nil {
						record(fmt.Errorf("faults %v: %w", faults, err))
					} else if err := checkPhi(target, host, faults, phi); err != nil {
						record(err)
					}
					return true
				})
			}
		}()
	}
	for f0 := 0; f0 <= n-k; f0++ {
		work <- f0
	}
	close(work)
	wg.Wait()

	return Report{Checked: checked.Load(), Failed: failed.Load(), First: first}
}

// Randomized verifies `trials` fault sets per model, drawn from the
// given fault models (default: the standard suite over the host).
func Randomized(target, host *graph.Graph, k int, mapper Mapper, trials int, seed int64, models []fault.Model) Report {
	if models == nil {
		models = fault.All(host)
	}
	rng := rand.New(rand.NewSource(seed))
	var rep Report
	var phiBuf []int // reused across trials
	for _, m := range models {
		for i := 0; i < trials; i++ {
			faults := m.Generate(rng, host.N(), k)
			rep.Checked++
			phi, err := mapper(faults, phiBuf)
			if phi != nil {
				phiBuf = phi
			}
			if err != nil {
				err = fmt.Errorf("faults %v: %w", faults, err)
			} else {
				err = checkPhi(target, host, faults, phi)
			}
			if err != nil {
				rep.Failed++
				if rep.First == nil {
					rep.First = fmt.Errorf("model %s: %w", m.Name(), err)
				}
			}
		}
	}
	return rep
}
