package wire

import (
	"errors"
	"fmt"
	"testing"

	"ftnet/internal/fleet"
	sharding "ftnet/internal/shard"
)

// TestWireWrongShardRedirect pins the RPC plane's half of the cutover
// contract: a request for an instance the ring assigns elsewhere is
// answered with StatusWrongShard carrying the owner's URL, and the
// decoded error matches fleet.ErrWrongShard / fleet.WrongShardOwner
// exactly as an in-process rejection would — never a silent apply.
func TestWireWrongShardRedirect(t *testing.T) {
	ring := sharding.New([]string{"a", "b"}, 0)
	foreign := ""
	for i := 0; i < 1000 && foreign == ""; i++ {
		if id := fmt.Sprintf("inst-%d", i); ring.Owner(id) == "b" {
			foreign = id
		}
	}
	if foreign == "" {
		t.Fatal("no probe id owned by b")
	}

	mgr := fleet.NewManager(fleet.Options{})
	ownerURL := "http://daemon-b.example:8100"
	mgr.SetTopology("a", map[string]string{"a": "http://daemon-a.example:8100", "b": ownerURL}, 0)
	addr, _ := startServer(t, mgr, ServerOptions{})
	c := dialTest(t, addr, Options{})

	checkRedirect := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, fleet.ErrWrongShard) {
			t.Fatalf("%s err = %v, want ErrWrongShard", op, err)
		}
		if IsTransport(err) {
			t.Fatalf("%s surfaced as a transport error: %v", op, err)
		}
		if owner := fleet.WrongShardOwner(err); owner != ownerURL {
			t.Fatalf("%s owner hint = %q, want %q", op, owner, ownerURL)
		}
	}

	_, _, err := c.Lookup(foreign, 0)
	checkRedirect("Lookup", err)
	_, err = c.LookupBatch(foreign, []int{0, 1}, make([]int, 2))
	checkRedirect("LookupBatch", err)
	_, err = c.ApplyBatch(foreign, []fleet.Event{{Kind: fleet.EventFault, Node: 0}})
	checkRedirect("ApplyBatch", err)

	// The connection survives the rejection — a redirect is an answer,
	// not a hangup — and owned instances keep working on it.
	mine := ""
	for i := 0; i < 1000 && mine == ""; i++ {
		if id := fmt.Sprintf("inst-%d", i); ring.Owner(id) == "a" {
			mine = id
		}
	}
	if _, err := mgr.Create(mine, fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(mine, 0); err != nil {
		t.Fatalf("owned lookup after redirect: %v", err)
	}
}
