package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F1"); !ok {
		t.Error("F1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"F1", "F2", "F3", "F4", "F5", "T1", "T2", "T3", "T4", "T5", "S1", "S2"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

func TestF1ShowsDeBruijnStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := F1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "16 nodes") {
		t.Errorf("F1 output missing node count:\n%s", out)
	}
	if !strings.Contains(out, "0101") {
		t.Errorf("F1 output missing binary labels:\n%s", out)
	}
}

func TestF3VerifiesEmbedding(t *testing.T) {
	var buf bytes.Buffer
	if err := F3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAULTY") || !strings.Contains(out, "embedding verified") {
		t.Errorf("F3 output incomplete:\n%s", out)
	}
}

func TestT5ShowsExplosion(t *testing.T) {
	var buf bytes.Buffer
	if err := T5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// N=8, k=1: ours 9 nodes, S-P 64 nodes must appear.
	if !strings.Contains(out, "Samatham-Pradhan needs") {
		t.Errorf("T5 missing spot check:\n%s", out)
	}
}

func TestS2ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := S2(&buf); err != nil {
		t.Fatal(err)
	}
	// Parse the table rows: p2p2=1, bus2=2, and p2p1 == bus1 for every row.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	rows := 0
	for _, ln := range lines[1:] {
		var h, k, p2p2, bus2, p2p1, bus1 int
		if n, _ := fmt.Sscan(ln, &h, &k, &p2p2, &bus2, &p2p1, &bus1); n == 6 {
			rows++
			if bus2 < 2*p2p2 {
				t.Errorf("h=%d k=%d: bus 2-port %d not ~2x p2p %d", h, k, bus2, p2p2)
			}
			if p2p1 != bus1 {
				t.Errorf("h=%d k=%d: 1-port mismatch p2p=%d bus=%d", h, k, p2p1, bus1)
			}
		}
	}
	if rows == 0 {
		t.Fatalf("no data rows parsed:\n%s", buf.String())
	}
}
