package ft

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// The reconfiguration map of Section III-A is a pure function of the
// fault set, so the whole read-path state of a live network can be a
// single immutable value: Snapshot bundles the fault set, the mapping
// it induces, and an epoch counting atomic transitions. Readers hold a
// *Snapshot and index into it with no synchronization at all; writers
// derive the next snapshot with Apply and publish the pointer.

// Error categories for rejected changes, matchable with errors.Is.
// ErrBudget marks batches that would exceed the spare budget;
// ErrConflict marks faulting an already-faulty node or repairing a
// healthy one. Out-of-range nodes are plain invalid input.
var (
	ErrBudget   = errors.New("ft: fault budget exhausted")
	ErrConflict = errors.New("ft: conflicting change")
)

// Change is one element of a reconfiguration batch: a host node
// failing (Repair == false) or returning to service (Repair == true).
type Change struct {
	Node   int
	Repair bool
}

// Mapper produces the reconfiguration map for a sorted fault set.
// NewSnapshot and Apply call it exactly once per successful
// transition; passing nil selects NewMapping. The fleet layer passes
// its shared cache's Get so that snapshots of equal fault sets share
// one mapping computation.
type Mapper func(nTarget, nHost int, sortedFaults []int) (*Mapping, error)

// Snapshot is the immutable state of a fault-tolerant network at one
// epoch. All methods are safe for unsynchronized concurrent use; the
// value never changes after construction.
type Snapshot struct {
	nTarget int
	nHost   int
	budget  int // max faults (k); <= nHost - nTarget
	epoch   uint64
	mapping *Mapping
}

// NewSnapshot returns the epoch-0, zero-fault snapshot of a network
// with the given sizes and fault budget.
func NewSnapshot(nTarget, nHost, budget int, mapper Mapper) (*Snapshot, error) {
	if mapper == nil {
		mapper = NewMapping
	}
	if budget < 0 || budget > nHost-nTarget {
		return nil, fmt.Errorf("ft: budget %d outside [0,%d]", budget, nHost-nTarget)
	}
	m, err := mapper(nTarget, nHost, nil)
	if err != nil {
		return nil, err
	}
	return &Snapshot{nTarget: nTarget, nHost: nHost, budget: budget, mapping: m}, nil
}

// Restore reconstructs the snapshot of an arbitrary epoch directly
// from its journaled state: the epoch counter and the sorted fault set
// a transition record carries. It is the recovery-path dual of Apply —
// because the paper's reconfiguration map is a pure function of the
// fault set, the O(k) record is enough to rebuild the entire snapshot
// bit-identically, and replaying a journal is one Restore per record
// rather than one event-by-event re-derivation.
func Restore(nTarget, nHost, budget int, epoch uint64, faults []int, mapper Mapper) (*Snapshot, error) {
	if mapper == nil {
		mapper = NewMapping
	}
	if budget < 0 || budget > nHost-nTarget {
		return nil, fmt.Errorf("ft: budget %d outside [0,%d]", budget, nHost-nTarget)
	}
	if len(faults) > budget {
		return nil, fmt.Errorf("%w: restoring %d faults over budget k=%d", ErrBudget, len(faults), budget)
	}
	m, err := mapper(nTarget, nHost, faults)
	if err != nil {
		return nil, err
	}
	return &Snapshot{nTarget: nTarget, nHost: nHost, budget: budget, epoch: epoch, mapping: m}, nil
}

// Apply derives the snapshot after a whole batch of changes. The batch
// is validated atomically — all-or-nothing: each change is checked
// against the evolving fault set (unknown node, double fault, repair
// of a healthy node, budget overflow) and the first invalid change
// rejects the entire batch, returning a nil snapshot and leaving the
// receiver untouched. On success the epoch advances by exactly one,
// however many changes the batch carried.
func (s *Snapshot) Apply(batch []Change, mapper Mapper) (*Snapshot, error) {
	if mapper == nil {
		mapper = NewMapping
	}
	if len(batch) == 0 {
		return nil, errors.New("ft: empty change batch")
	}
	faults := slices.Clone(s.mapping.Faults)
	for _, ch := range batch {
		if ch.Node < 0 || ch.Node >= s.nHost {
			return nil, fmt.Errorf("ft: node %d out of range [0,%d)", ch.Node, s.nHost)
		}
		i := sort.SearchInts(faults, ch.Node)
		present := i < len(faults) && faults[i] == ch.Node
		switch {
		case ch.Repair && !present:
			return nil, fmt.Errorf("%w: node %d is not faulty", ErrConflict, ch.Node)
		case ch.Repair:
			faults = append(faults[:i], faults[i+1:]...)
		case present:
			return nil, fmt.Errorf("%w: node %d is already faulty", ErrConflict, ch.Node)
		case len(faults) >= s.budget:
			return nil, fmt.Errorf("%w: k=%d (faults %v, faulting %d)",
				ErrBudget, s.budget, faults, ch.Node)
		default:
			faults = append(faults, 0)
			copy(faults[i+1:], faults[i:])
			faults[i] = ch.Node
		}
	}
	m, err := mapper(s.nTarget, s.nHost, faults)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		nTarget: s.nTarget,
		nHost:   s.nHost,
		budget:  s.budget,
		epoch:   s.epoch + 1,
		mapping: m,
	}, nil
}

// NTarget returns the number of target nodes.
func (s *Snapshot) NTarget() int { return s.nTarget }

// NHost returns the number of host nodes.
func (s *Snapshot) NHost() int { return s.nHost }

// Budget returns the fault budget k the snapshot enforces.
func (s *Snapshot) Budget() int { return s.budget }

// Epoch returns the number of atomic transitions since the zero-fault
// snapshot. A batch of any size advances it by exactly one.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFaults returns the current fault count.
func (s *Snapshot) NumFaults() int { return len(s.mapping.Faults) }

// SparesFree returns how many further faults the budget admits.
func (s *Snapshot) SparesFree() int { return s.budget - len(s.mapping.Faults) }

// Faults returns a copy of the sorted fault set.
func (s *Snapshot) Faults() []int { return slices.Clone(s.mapping.Faults) }

// Phi returns the host node hosting target node x at this epoch.
func (s *Snapshot) Phi(x int) int { return s.mapping.Phi(x) }

// Mapping returns the snapshot's reconfiguration map (immutable).
func (s *Snapshot) Mapping() *Mapping { return s.mapping }
