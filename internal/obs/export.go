package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file is the read side of the registry: the Prometheus text
// exposition (histograms as cumulative buckets, the format a scraper
// expects) and the structured JSON export embedded in /v1/stats and
// scraped by loadgen into BENCH_service.json artifacts.

// Export is the JSON form of a registry snapshot. Durations are
// float64 nanoseconds: integral for everything a histogram can hold,
// and directly comparable to the ns/op numbers the bench artifacts
// already gate on.
type Export struct {
	Counters   []CounterStat `json:"counters,omitempty"`
	Gauges     []GaugeStat   `json:"gauges,omitempty"`
	Histograms []HistStat    `json:"histograms,omitempty"`
}

// CounterStat is one exported counter.
type CounterStat struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"` // "key=value" when the family is labeled
	Value uint64 `json:"value"`
}

// GaugeStat is one exported gauge.
type GaugeStat struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// HistStat is one exported histogram: the count plus the quantiles the
// SLO artifacts gate on.
type HistStat struct {
	Name   string  `json:"name"`
	Label  string  `json:"label,omitempty"`
	Count  uint64  `json:"count"`
	SumNS  float64 `json:"sum_ns"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
	MaxNS  float64 `json:"max_ns"`
}

// Find returns the first histogram stat matching name (and label, when
// non-empty) — the lookup loadgen artifact building leans on.
func (e *Export) Find(name, label string) (HistStat, bool) {
	if e == nil {
		return HistStat{}, false
	}
	for _, h := range e.Histograms {
		if h.Name == name && (label == "" || h.Label == label) {
			return h, true
		}
	}
	return HistStat{}, false
}

// FindGauge returns the named gauge's value.
func (e *Export) FindGauge(name string) (int64, bool) {
	if e == nil {
		return 0, false
	}
	for _, g := range e.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// sortedFamilies returns the families in name order, snapshotting the
// order slice under the lock so export can walk without holding it.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		r.names = r.names[:0]
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
		r.sorted = true
	}
	out := make([]*family, len(r.names))
	for i, name := range r.names {
		out[i] = r.families[name]
	}
	return out
}

// children returns one family's (labelValue, metric-key) pairs in
// registration order, copied under the registry lock.
func (r *Registry) children(f *family) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), f.order...)
}

// Export returns the JSON snapshot of every registered metric.
func (r *Registry) Export() Export {
	var e Export
	for _, f := range r.sortedFamilies() {
		for _, label := range r.children(f) {
			qual := ""
			if f.labelKey != "" && label != "" {
				qual = f.labelKey + "=" + label
			}
			switch f.kind {
			case kindCounter:
				e.Counters = append(e.Counters, CounterStat{Name: f.name, Label: qual, Value: f.counters[label].Value()})
			case kindGauge:
				e.Gauges = append(e.Gauges, GaugeStat{Name: f.name, Label: qual, Value: f.gauges[label].Value()})
			case kindHistogram:
				s := f.histograms[label].Snapshot()
				e.Histograms = append(e.Histograms, HistStat{
					Name:   f.name,
					Label:  qual,
					Count:  s.Count,
					SumNS:  float64(s.Sum),
					P50NS:  float64(s.Quantile(50)),
					P99NS:  float64(s.Quantile(99)),
					P999NS: float64(s.Quantile(99.9)),
					MaxNS:  float64(s.Max),
				})
			}
		}
	}
	return e
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4). Histograms are emitted as
// cumulative le buckets in seconds — only up to the highest non-empty
// bucket, plus the mandatory +Inf — with _sum and _count samples, so a
// scraper reconstructs quantiles server-side.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name)
			for _, label := range r.children(f) {
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(f.labelKey, label, ""), f.counters[label].Value())
			}
		case kindGauge:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name)
			for _, label := range r.children(f) {
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(f.labelKey, label, ""), f.gauges[label].Value())
			}
		case kindHistogram:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
			for _, label := range r.children(f) {
				s := f.histograms[label].Snapshot()
				top := -1
				for i, c := range s.Buckets {
					if c > 0 {
						top = i
					}
				}
				var cum uint64
				for i := 0; i <= top; i++ {
					cum += s.Buckets[i]
					le := strconv.FormatFloat(float64(upperNS(i))/1e9, 'g', -1, 64)
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(f.labelKey, label, le), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(f.labelKey, label, "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, promLabels(f.labelKey, label, ""), float64(s.Sum)/1e9)
				// _count must equal the +Inf bucket; sum the buckets rather
				// than reading Count, which may lead them under concurrency.
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(f.labelKey, label, ""), cum)
			}
		}
	}
}

// promLabels renders the {key="value",le="..."} label block, or "" when
// there is nothing to say.
func promLabels(key, value, le string) string {
	switch {
	case key != "" && value != "" && le != "":
		return `{` + key + `="` + value + `",le="` + le + `"}`
	case key != "" && value != "":
		return `{` + key + `="` + value + `"}`
	case le != "":
		return `{le="` + le + `"}`
	default:
		return ""
	}
}
