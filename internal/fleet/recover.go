package fleet

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"ftnet/internal/journal"
)

// RecoverStats summarizes one journal replay. Offset is the byte
// length of the valid record prefix — when Torn is set, everything
// past Offset was a torn or corrupt tail (the signature of a crash
// mid-append) and was dropped; RecoverFile truncates the file there so
// fresh appends continue from clean state. Orphaned counts transition
// records that trail their instance's delete record with no re-create
// in between. Current writers cannot produce such records (Delete
// tombstones the instance under its writer mutex before appending the
// delete record), so this is defense in depth for logs from older
// writers or external tooling; replay skips them instead of failing.
type RecoverStats struct {
	Records     int     `json:"records"`     // complete records replayed
	Created     int     `json:"created"`     // instances created
	Deleted     int     `json:"deleted"`     // instances deleted
	Transitions int     `json:"transitions"` // epoch transitions restored
	Checkpoints int     `json:"checkpoints"` // compaction checkpoints restored
	Migrated    int     `json:"migrated"`    // migration arrivals restored
	Orphaned    int     `json:"orphaned"`    // transitions for deleted instances, skipped
	LastEpoch   uint64  `json:"last_epoch"`  // highest epoch restored
	BaseSeq     uint64  `json:"base_seq"`    // commit seq of the file's first ordinary record
	NextSeq     uint64  `json:"next_seq"`    // commit seq the next transition will carry
	Term        uint64  `json:"term"`        // leadership term in force at the end of the log
	TermSeq     uint64  `json:"term_seq"`    // commit seq of the in-file bump that set it (0 = from seq base)
	TermBumps   int     `json:"term_bumps"`  // OpTermBump records replayed
	Torn        bool    `json:"torn"`        // a torn/corrupt tail was dropped
	TornReason  string  `json:"torn_reason,omitempty"`
	Offset      int64   `json:"offset"`  // end of the valid prefix, in bytes
	Seconds     float64 `json:"seconds"` // wall-clock recovery time
}

// Recover replays a journal into the manager, rebuilding every
// instance to its exact pre-crash epoch, fault set, and mapping. Each
// transition record is verified bit-identically against a freshly
// computed ft.NewMapping before its snapshot is published — a log that
// decodes but encodes an impossible state (epoch gap, budget overflow,
// mapping divergence) fails recovery rather than being accepted.
//
// A torn tail (ErrTorn from the reader) is not an error: it is the
// expected residue of a crash mid-append. Replay keeps every complete
// record before the tear, reports it in the stats, and the caller
// truncates (RecoverFile does so automatically).
//
// Recover never journals its own replayed operations; it is meant to
// run on boot, before traffic — and before SetJournal attaches the
// append writer to the recovered file.
func (m *Manager) Recover(r io.Reader) (RecoverStats, error) {
	start := time.Now()
	st := RecoverStats{BaseSeq: 1, NextSeq: 1}
	jr := journal.NewReader(r)
	deleted := make(map[string]bool)
	for {
		rec, err := jr.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, journal.ErrTorn) {
			st.Torn = true
			st.TornReason = err.Error()
			break
		}
		if err != nil {
			return st, fmt.Errorf("fleet: recover: %w", err)
		}
		st.Records++
		switch rec.Op {
		case journal.OpSeqBase:
			// Metadata, not a transition: a compacted file leads with the
			// commit seq of its first post-checkpoint record — and the
			// leadership term in force at the cut — so both survive the
			// checkpoint-and-truncate swap.
			st.BaseSeq = rec.Seq
			st.NextSeq = rec.Seq
			if rec.Term < st.Term {
				return st, fmt.Errorf("fleet: recover record %d: seq base term %d below term %d in force",
					st.Records, rec.Term, st.Term)
			}
			st.Term = rec.Term
			st.TermSeq = 0
		case journal.OpCheckpoint:
			// One instance's complete state at the compaction cut; does
			// not consume a commit seq (it summarizes the dropped prefix).
			spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
			m.deleteRaw(rec.ID) // the checkpoint is authoritative
			in, err := m.createRaw(rec.ID, spec)
			if err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			if err := in.restoreCheckpoint(rec.Epoch, rec.Faults); err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			delete(deleted, rec.ID)
			st.Checkpoints++
			if rec.Epoch > st.LastEpoch {
				st.LastEpoch = rec.Epoch
			}
		case journal.OpMigrate:
			// An instance that arrived via checkpoint-streamed migration:
			// same complete-state shape as a checkpoint, but it consumes a
			// commit seq — it is an ordinary entry this daemon's followers
			// replicated, not a summary of a dropped prefix.
			spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
			m.deleteRaw(rec.ID) // the arrival record is authoritative
			in, err := m.createRaw(rec.ID, spec)
			if err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			if err := in.restoreCheckpoint(rec.Epoch, rec.Faults); err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			delete(deleted, rec.ID)
			st.Migrated++
			st.NextSeq++
			if rec.Epoch > st.LastEpoch {
				st.LastEpoch = rec.Epoch
			}
		case journal.OpCreate:
			spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
			if _, err := m.createRaw(rec.ID, spec); err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			delete(deleted, rec.ID) // ids may be reused after a delete
			st.Created++
			st.NextSeq++
		case journal.OpDelete:
			m.deleteRaw(rec.ID)
			deleted[rec.ID] = true
			st.Deleted++
			st.NextSeq++
		case journal.OpTermBump:
			// The leadership fence consumes a commit seq like any ordinary
			// record, and the chain must be strictly increasing — a log
			// where the term goes backwards is a deposed leader's suffix
			// that should have been discarded, so replay refuses it.
			if rec.Term <= st.Term {
				return st, fmt.Errorf("fleet: recover record %d: term bump to %d but term %d already in force",
					st.Records, rec.Term, st.Term)
			}
			st.Term = rec.Term
			st.TermSeq = st.NextSeq
			st.NextSeq++
			st.TermBumps++
		case journal.OpTransition:
			st.NextSeq++
			in, ok := m.Get(rec.ID)
			if !ok {
				if deleted[rec.ID] {
					st.Orphaned++
					continue
				}
				return st, fmt.Errorf("fleet: recover record %d: transition for unknown instance %q",
					st.Records, rec.ID)
			}
			if err := in.restore(rec.Epoch, rec.Faults); err != nil {
				return st, fmt.Errorf("fleet: recover record %d: %w", st.Records, err)
			}
			st.Transitions++
			if rec.Epoch > st.LastEpoch {
				st.LastEpoch = rec.Epoch
			}
		default:
			return st, fmt.Errorf("fleet: recover record %d: unknown op %v", st.Records, rec.Op)
		}
	}
	st.Offset = jr.Offset()
	st.Seconds = time.Since(start).Seconds()
	// Seed the commit pipeline where the log left off, so watch and
	// replication sequence numbers — and the leadership term fence —
	// continue across the restart.
	m.pipe.log.SetPosition(st.BaseSeq, st.NextSeq-1)
	m.pipe.log.SetTerm(st.Term, st.TermSeq)
	m.recovered.Store(&st)
	return st, nil
}

// RecoverFile replays the journal at path (a missing file is an empty
// journal) and truncates any torn tail, so a subsequently attached
// append writer (journal.Create) continues from the valid prefix
// instead of writing after garbage. It returns the replay stats; on a
// replay error the file is left untouched for post-mortem.
func (m *Manager) RecoverFile(path string) (RecoverStats, error) {
	// A stale checkpoint temp file is the residue of a crash
	// mid-compaction: the rename never happened, so the old journal
	// wins and the half-written checkpoint is dropped.
	os.Remove(path + ".compact")
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return RecoverStats{}, nil
	}
	if err != nil {
		return RecoverStats{}, fmt.Errorf("fleet: recover: %w", err)
	}
	st, rerr := m.Recover(f)
	cerr := f.Close()
	if rerr != nil {
		return st, rerr
	}
	if cerr != nil {
		return st, fmt.Errorf("fleet: recover: %w", cerr)
	}
	if fi, err := os.Stat(path); err == nil && fi.Size() > st.Offset {
		if err := os.Truncate(path, st.Offset); err != nil {
			return st, fmt.Errorf("fleet: truncate torn tail: %w", err)
		}
	}
	return st, nil
}
