package ftnet

import "testing"

// TestFleetFacade walks the create -> fault -> lookup -> repair cycle
// through the public facade and cross-checks against the one-shot
// Reconfigure API.
func TestFleetFacade(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	spec := FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{3, 11} {
		if _, err := mgr.Event("prod", FleetEvent{Kind: FleetFault, Node: f}); err != nil {
			t.Fatal(err)
		}
	}

	net, err := NewDeBruijn2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		phi, err := mgr.Lookup("prod", x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want.Phi(x) {
			t.Fatalf("Lookup(prod, %d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	if _, err := mgr.Event("prod", FleetEvent{Kind: FleetRepair, Node: 3}); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Instances != 1 || st.Events != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFleetFacadeBatchAndSnapshot drives an atomic burst through the
// facade and pins the snapshot contract: one epoch per transition, and
// a held FleetSnapshot keeps answering for its epoch.
func TestFleetFacadeBatchAndSnapshot(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	if _, err := mgr.Create("prod", FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := mgr.EventBatch("prod", []FleetEvent{
		{Kind: FleetFault, Node: 3},
		{Kind: FleetFault, Node: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NumFaults != 2 || res.Applied != 2 {
		t.Fatalf("batch result %+v", res)
	}
	in, _ := mgr.Get("prod")
	var held *FleetSnapshot = in.Snapshot()
	if _, err := mgr.Event("prod", FleetEvent{Kind: FleetFault, Node: 5}); err != nil {
		t.Fatal(err)
	}
	if held.Epoch() != 1 || held.NumFaults() != 2 {
		t.Fatalf("held snapshot changed: epoch %d faults %v", held.Epoch(), held.Faults())
	}
	net, err := NewDeBruijn2(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		if held.Phi(x) != want.Phi(x) {
			t.Fatalf("held snapshot Phi(%d) = %d, want %d", x, held.Phi(x), want.Phi(x))
		}
	}
}
