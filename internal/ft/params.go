// Package ft implements the paper's primary contribution: fault-tolerant
// de Bruijn and shuffle-exchange networks with the minimum number of
// spare nodes.
//
// Given a target graph G with N nodes and a fault budget k, the
// constructions produce a host graph G' with exactly N + k nodes that is
// (k, G)-tolerant: for ANY set of at most k node faults, the surviving
// nodes of G' induce a subgraph containing G. The reconfiguration map is
// the rank-based monotone assignment of Section III-A: target node x is
// placed on the (x+1)-st non-faulty host node.
//
// Constructions and their degree bounds (Corollaries 1-4 and Section V):
//
//	B^k_{2,h}  2^h + k nodes   degree <= 4k + 4
//	B^k_{m,h}  m^h + k nodes   degree <= 4(m-1)k + 2m
//	FT SE_h (via de Bruijn embedding)   degree <= 4k + 4
//	FT SE_h (natural labeling)          degree <= 6k + 6 measured
//	                                    (paper states 6k + 4; see DESIGN.md)
//	bus implementation                   bus-degree <= 2k + 3
package ft

import (
	"fmt"

	"ftnet/internal/debruijn"
	"ftnet/internal/num"
)

// Params identifies a fault-tolerant de Bruijn graph B^k_{m,h}.
type Params struct {
	M int // base, >= 2
	H int // digits, >= 3 (the paper's theorems assume h >= 3)
	K int // number of tolerated node faults, >= 0
}

// Validate reports whether the parameters satisfy the paper's
// preconditions (m >= 2, h >= 3, k >= 0) and fit in an int.
func (p Params) Validate() error {
	if p.M < 2 {
		return fmt.Errorf("ft: base m=%d must be >= 2", p.M)
	}
	if p.H < 3 {
		return fmt.Errorf("ft: digits h=%d must be >= 3 (paper precondition)", p.H)
	}
	if p.K < 0 {
		return fmt.Errorf("ft: fault budget k=%d must be >= 0", p.K)
	}
	n, err := num.IPow(p.M, p.H)
	if err != nil {
		return fmt.Errorf("ft: graph too large: %v", err)
	}
	if n+p.K < n {
		return fmt.Errorf("ft: m^h + k overflows int")
	}
	return nil
}

// Target returns the parameters of the target de Bruijn graph B_{m,h}.
func (p Params) Target() debruijn.Params { return debruijn.Params{M: p.M, H: p.H} }

// NTarget returns the target node count m^h.
func (p Params) NTarget() int { return num.MustIPow(p.M, p.H) }

// NHost returns the host node count m^h + k — the paper's minimum
// possible for tolerating k faults.
func (p Params) NHost() int { return p.NTarget() + p.K }

// RMin returns the smallest r in the host edge rule,
// (m-1)(-k); for m=2 this is -k.
func (p Params) RMin() int { return (p.M - 1) * (-p.K) }

// RMax returns the largest r in the host edge rule,
// (m-1)(k+1); for m=2 this is k+1.
func (p Params) RMax() int { return (p.M - 1) * (p.K + 1) }

// DegreeBound returns the paper's degree bound for B^k_{m,h}:
// 4(m-1)k + 2m (Corollary 3); for m=2 it reduces to 4k+4 (Corollary 1).
func (p Params) DegreeBound() int { return 4*(p.M-1)*p.K + 2*p.M }

// String returns the paper's notation B^k_{m,h}.
func (p Params) String() string { return fmt.Sprintf("B^%d_{%d,%d}", p.K, p.M, p.H) }
