package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ftnet/internal/bus"
	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/layout"
	"ftnet/internal/num"
	"ftnet/internal/route"
	"ftnet/internal/sim"
	"ftnet/internal/verify"
)

// extendedFinal returns the generalization and routing-alternative
// experiments.
func extendedFinal() []Experiment {
	return []Experiment{
		{"A4", "Extension: the construction generalized to rings/chordal rings (Hayes)", A4},
		{"M3", "Alternative: fault-avoiding routing (no spares) vs reconfiguration", M3},
		{"T6", "Layout model: wire counts and lengths, point-to-point vs buses", T6},
		{"S6", "Wormhole switching: permutation latency, healthy vs reconfigured", S6},
	}
}

// A4 applies the paper's technique to other linear-rule topologies and
// verifies tolerance exhaustively. The m=1 case reproduces Hayes's
// classic fault-tolerant ring (N+k nodes, degree 2k+2) — evidence for
// the paper's closing hope that its technique generalizes.
func A4(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "target\tN\tk\thost nodes\thost degree\ts-range\tverified fault sets")
	cases := []struct {
		name string
		p    ft.GeneralParams
	}{
		{"ring C_16", ft.Ring(16, 1)},
		{"ring C_16", ft.Ring(16, 2)},
		{"ring C_16", ft.Ring(16, 3)},
		{"chordal ring (1,5)", ft.ChordalRing(16, 5, 2)},
		{"sparse dB rule R={0,2}", ft.GeneralParams{M: 3, N: 27, R: []int{0, 2}, K: 1}},
		{"full dB rule m=2 h=4", ft.GeneralParams{M: 2, N: 16, R: []int{0, 1}, K: 2}},
	}
	for _, c := range cases {
		target, err := ft.NewTarget(c.p)
		if err != nil {
			return err
		}
		host, err := ft.NewGeneral(c.p)
		if err != nil {
			return err
		}
		rep := verify.Exhaustive(target, host, c.p.K, ft.GeneralMapper(c.p))
		if !rep.Ok() {
			return fmt.Errorf("%s: %v", c.name, rep.First)
		}
		lo, hi := c.p.SRange()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t[%d..%d]\t%d\n",
			c.name, c.p.N, c.p.K, host.N(), host.MaxDegree(), lo, hi, rep.Checked)
	}
	return tw.Flush()
}

// M3 contrasts the two ways to survive faults:
//
//   - fault-avoiding routing on the unprotected target (ref [8] spirit):
//     zero spares, but paths dilate and enough faults disconnect pairs;
//   - the paper's reconfiguration: k spares, dilation exactly 1.
func M3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tfaults\tavoid: disconnected pairs\tavoid: max dilation\tavoid: avg dilation\treconfig: dilation")
	rng := stableRng()
	for h := 4; h <= 6; h++ {
		p := debruijn.Params{M: 2, H: h}
		g := debruijn.MustNew(p)
		for _, k := range []int{1, 2, 4} {
			worstDisc := 0
			worstMax, sumAvg := 0.0, 0.0
			const trials = 5
			for trial := 0; trial < trials; trial++ {
				faults := num.RandomSubset(rng, g.N(), k)
				st, err := route.MeasureAvoidance(g, faults)
				if err != nil {
					return err
				}
				if st.Disconnected > worstDisc {
					worstDisc = st.Disconnected
				}
				if st.MaxDilation > worstMax {
					worstMax = st.MaxDilation
				}
				sumAvg += st.AvgDilation
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%.2f\t1.00 (always)\n",
				h, k, worstDisc, worstMax, sumAvg/trials)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(avoid = route around faults on the bare B_{2,h}; reconfig = the paper's")
	fmt.Fprintln(w, " spare-node scheme, whose embedding maps edges to edges — dilation 1 by Theorem 1)")
	return nil
}

// T6 quantifies what Section V leaves to the layout engineer: under a
// first-order linear/ring placement model, the bus implementation cuts
// the WIRE COUNT from ~(2k+2) per node to exactly 1 per node, while the
// longest single wire (the capacitance proxy the paper alludes to)
// grows, because a node's block sits near position 2i, far from i.
func T6(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tp2p wires\tp2p total len\tp2p max len\tbus wires\tbus total len\tbus max len")
	for h := 3; h <= 7; h++ {
		for _, k := range []int{1, 2, 4} {
			p := ft.Params{M: 2, H: h, K: k}
			arch, err := bus.New(p)
			if err != nil {
				return err
			}
			g := arch.ConnectivityGraph()
			wp := layout.PointToPoint(g, true)
			wb := layout.Buses(arch, true)
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				h, k, wp.Wires, wp.TotalLength, wp.MaxLength,
				wb.Wires, wb.TotalLength, wb.MaxLength)
		}
	}
	return tw.Flush()
}

// S6 runs permutation traffic under wormhole switching (the router
// discipline of the paper's era) on the healthy target and on the
// reconfigured host, across message lengths. Dilation-1 reconfiguration
// keeps wormhole latency unchanged too — worm length, not the remap,
// dominates.
func S6(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tflits\ttarget cycles\treconfigured cycles")
	rng := stableRng()
	for _, h := range []int{4, 5, 6} {
		k := 2
		p := ft.Params{M: 2, H: h, K: k}
		target := debruijn.MustNew(p.Target())
		host := ft.MustNew(p)
		n := p.NTarget()
		perm := rng.Perm(n)
		faults := num.RandomSubset(rng, p.NHost(), k)
		mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			return err
		}
		phi := mp.PhiSlice()
		for _, flits := range []int{1, 4, 16} {
			router := func(u, v int) ([]int, error) { return route.ShortPath(u, v, p.Target()) }
			msgsT, err := sim.Permutation(n, func(x int) int { return perm[x] }, router)
			if err != nil {
				return err
			}
			stT, err := sim.RunWormhole(sim.NewPointToPoint(target, 2), msgsT, flits, 1000000)
			if err != nil {
				return err
			}
			lifted := func(u, v int) ([]int, error) {
				pth, err := route.ShortPath(u, v, p.Target())
				if err != nil {
					return nil, err
				}
				return route.Lift(pth, phi)
			}
			msgsH, err := sim.Permutation(n, func(x int) int { return perm[x] }, lifted)
			if err != nil {
				return err
			}
			stH, err := sim.RunWormhole(sim.NewPointToPoint(host, 2), msgsH, flits, 1000000)
			if err != nil {
				return err
			}
			if stT.Stalled || stH.Stalled {
				return fmt.Errorf("h=%d flits=%d: wormhole stalled (%v / %v)", h, flits, stT.Stats, stH.Stats)
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", h, k, flits, stT.Cycles, stH.Cycles)
		}
	}
	return tw.Flush()
}
