package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"ftnet/internal/journal"
)

// Migration is one instance's state in flight between daemons. The
// same frame carries both halves of the two-phase handoff:
//
//   - stage: BaseSeq is the source's commit seq at capture and Records
//     holds exactly one OpCheckpoint — the O(k) record that is the
//     instance's entire state, taken without fencing writes.
//   - commit: FenceSeq is the seq the source fenced writes at and
//     Records holds the journal suffix for this instance in
//     (BaseSeq, FenceSeq] — every transition the staged checkpoint
//     missed, in commit order.
//
// Every record must name the migrating instance: the codec rejects a
// frame that smuggles another instance's state.
type Migration struct {
	ID       string
	BaseSeq  uint64
	FenceSeq uint64
	Records  []journal.Record
}

// migrationVersion is the stream format version byte; decoding rejects
// anything else.
const migrationVersion = 1

// MaxMigrationSize bounds one encoded migration frame. A checkpoint is
// O(k) and a fenced suffix is short by construction (the fence window
// is the pause the rebalance SLO tracks), so this is generous while
// keeping a corrupt count from asking the receiver for gigabytes.
const MaxMigrationSize = 64 << 20

// AppendMigration appends the canonical encoding of m to dst. It is
// the exact inverse of DecodeMigration: decode(append(nil, m)) == m,
// and re-encoding any accepted payload reproduces it byte for byte.
func AppendMigration(dst []byte, m Migration) ([]byte, error) {
	if m.ID == "" {
		return nil, fmt.Errorf("shard: empty migration id")
	}
	dst = append(dst, migrationVersion)
	dst = binary.AppendUvarint(dst, uint64(len(m.ID)))
	dst = append(dst, m.ID...)
	dst = binary.AppendUvarint(dst, m.BaseSeq)
	dst = binary.AppendUvarint(dst, m.FenceSeq)
	dst = binary.AppendUvarint(dst, uint64(len(m.Records)))
	var scratch []byte
	for _, rec := range m.Records {
		if rec.ID != m.ID {
			return nil, fmt.Errorf("shard: record for %q in migration of %q", rec.ID, m.ID)
		}
		payload, err := journal.AppendRecord(scratch[:0], rec)
		if err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(len(payload)))
		dst = append(dst, payload...)
		scratch = payload
	}
	return dst, nil
}

// mcursor is a strict cursor over a migration payload: bounds-checked,
// minimal uvarints only — the same accepted-language-is-exactly-the-
// canonical-encodings discipline as the journal and wire codecs.
type mcursor struct {
	b   []byte
	off int
}

func (c *mcursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("shard: truncated or overlong uvarint at offset %d", c.off)
	}
	if n > 1 && c.b[c.off+n-1] == 0 {
		return 0, fmt.Errorf("shard: non-minimal uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *mcursor) intVal() (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt {
		return 0, fmt.Errorf("shard: value %d overflows int", v)
	}
	return int(v), nil
}

// DecodeMigration parses one canonical migration payload. It never
// panics on arbitrary input; any deviation — unknown version, truncated
// field, record naming another instance, trailing bytes — is an error.
func DecodeMigration(b []byte) (Migration, error) {
	if len(b) > MaxMigrationSize {
		return Migration{}, fmt.Errorf("shard: migration of %d bytes exceeds max %d", len(b), MaxMigrationSize)
	}
	if len(b) < 1 {
		return Migration{}, fmt.Errorf("shard: empty migration payload")
	}
	if b[0] != migrationVersion {
		return Migration{}, fmt.Errorf("shard: unknown migration version %d", b[0])
	}
	c := &mcursor{b: b, off: 1}
	var m Migration
	idLen, err := c.intVal()
	if err != nil {
		return Migration{}, err
	}
	if idLen == 0 {
		return Migration{}, fmt.Errorf("shard: empty migration id")
	}
	if idLen > len(b)-c.off {
		return Migration{}, fmt.Errorf("shard: id length %d exceeds %d remaining bytes", idLen, len(b)-c.off)
	}
	m.ID = string(b[c.off : c.off+idLen])
	c.off += idLen
	if m.BaseSeq, err = c.uvarint(); err != nil {
		return Migration{}, err
	}
	if m.FenceSeq, err = c.uvarint(); err != nil {
		return Migration{}, err
	}
	count, err := c.intVal()
	if err != nil {
		return Migration{}, err
	}
	// Each record costs at least two bytes (length prefix + version), so
	// a count beyond the remaining payload is corrupt — checked before
	// allocating.
	if count > len(b)-c.off {
		return Migration{}, fmt.Errorf("shard: record count %d exceeds %d remaining bytes", count, len(b)-c.off)
	}
	if count > 0 {
		m.Records = make([]journal.Record, 0, count)
	}
	for i := 0; i < count; i++ {
		recLen, err := c.intVal()
		if err != nil {
			return Migration{}, err
		}
		if recLen > journal.MaxRecordSize {
			return Migration{}, fmt.Errorf("shard: record of %d bytes exceeds max %d", recLen, journal.MaxRecordSize)
		}
		if recLen > len(b)-c.off {
			return Migration{}, fmt.Errorf("shard: record length %d exceeds %d remaining bytes", recLen, len(b)-c.off)
		}
		rec, err := journal.DecodeRecord(b[c.off : c.off+recLen])
		if err != nil {
			return Migration{}, fmt.Errorf("shard: record %d: %w", i, err)
		}
		if rec.ID != m.ID {
			return Migration{}, fmt.Errorf("shard: record %d for %q in migration of %q", i, rec.ID, m.ID)
		}
		c.off += recLen
		m.Records = append(m.Records, rec)
	}
	if c.off != len(b) {
		return Migration{}, fmt.Errorf("shard: %d trailing bytes after migration", len(b)-c.off)
	}
	return m, nil
}
