// Package fleet is the online reconfiguration service: it owns live
// fault-tolerant network instances, absorbs streams of fault/repair
// events, and answers "where does target node x run now?" at memory
// speed.
//
// The paper (Bruck, Cypher, Ho 1992) guarantees that after ANY <= k
// node faults the host still contains the target with dilation 1; this
// package turns that one-shot guarantee into a long-running service:
//
//   - Instance: a state machine around one fault-tolerant network. Its
//     entire read-path state is one immutable ft.Snapshot (fault set +
//     mapping + epoch) behind an atomic pointer, so Lookup is
//     lock-free — a pointer load plus an array index — and never
//     blocks event application. Writers validate Fault/Repair events
//     (singly or as atomic all-or-nothing bursts) against the spare
//     budget k and derive the next snapshot copy-on-write; the
//     monotone rank mapping of Section III-A comes from the shared
//     cache, so repeated fault patterns cost one map lookup.
//   - Cache: a sharded mapping cache keyed by the canonical (sorted)
//     fault set — the key hash picks an independently-locked shard
//     with its own LRU list and stats — with single-flight computation
//     so a stampede of instances hitting the same fault pattern
//     computes ft.NewMapping exactly once.
//   - Manager: a sharded registry owning many instances behind one API
//     (Create, Event, EventBatch, Lookup, Stats), safe under
//     `go test -race`.
//
// cmd/ftnetd serves this API over HTTP/JSON; cmd/ftload drives it.
package fleet

import (
	"errors"
	"fmt"

	"ftnet/internal/ft"
)

// Error categories, matchable with errors.Is. ErrNotFound marks
// requests naming an unknown instance; ErrConflict marks requests the
// current state rejects (duplicate id, double fault, exhausted budget).
// Everything else the package returns is plain invalid input.
var (
	ErrNotFound = errors.New("fleet: not found")
	ErrConflict = errors.New("fleet: conflict")

	// ErrUnavailable marks transitions refused because the durability
	// layer failed: the journal append did not complete, so the state
	// change was not applied (the snapshot pointer is only published
	// after the record is journaled). Transports map it to 503.
	ErrUnavailable = errors.New("fleet: journal unavailable")

	// ErrBudget is the ErrConflict subcategory for events rejected
	// because they would exceed the spare budget k; stats report it
	// separately from duplicate-fault/repair-healthy conflicts.
	ErrBudget error = &fleetError{category: ErrConflict, msg: "fleet: fault budget exhausted"}

	// ErrReadOnly marks mutations refused because this replica is in
	// read-only posture (a follower, or a deposed leader that demoted
	// itself). The error surfaced to clients carries the leader hint
	// when one is known; transports map it to 403 / StatusReadOnly.
	ErrReadOnly = errors.New("fleet: read-only replica")

	// ErrStaleTerm marks writes fenced off by the leadership term: a
	// term bump that does not move the term forward, or an entry from a
	// leader whose term has been superseded. Transports map it to
	// StatusStaleTerm so a deposed leader can tell "I must demote"
	// apart from ordinary conflicts.
	ErrStaleTerm = errors.New("fleet: stale leadership term")

	// ErrWrongShard marks requests naming an instance this daemon does
	// not own under the shard ring — either never owned, or fenced away
	// mid-migration. The error carries the owner's advertised URL when
	// known (WrongShardOwner extracts it); transports surface it as
	// 403 + X-Ftnet-Owner / StatusWrongShard so clients re-route
	// instead of retrying here.
	ErrWrongShard = errors.New("fleet: wrong shard")
)

// fleetError carries a human message plus an errors.Is-matchable
// category, so transports map rejections to codes without string
// sniffing.
type fleetError struct {
	category error // ErrNotFound, ErrConflict, or nil
	msg      string
}

func (e *fleetError) Error() string { return e.msg }

func (e *fleetError) Unwrap() error { return e.category }

func errorf(category error, format string, args ...any) error {
	return &fleetError{category: category, msg: fmt.Sprintf(format, args...)}
}

// wrongShardError is ErrWrongShard plus the owning daemon's advertised
// URL, so every transport can hand the client a redirect target
// without re-deriving ring state.
type wrongShardError struct {
	owner string // the owner's advertised URL ("" when unknown)
	msg   string
}

func (e *wrongShardError) Error() string { return e.msg }

func (e *wrongShardError) Unwrap() error { return ErrWrongShard }

func wrongShardf(owner, format string, args ...any) error {
	return &wrongShardError{owner: owner, msg: fmt.Sprintf(format, args...)}
}

// WrongShardError builds an ErrWrongShard error carrying the owning
// daemon's advertised URL — the transports' decode side uses it so a
// redirect received over the wire matches errors.Is(ErrWrongShard) and
// WrongShardOwner exactly like one raised in-process.
func WrongShardError(owner, msg string) error {
	return &wrongShardError{owner: owner, msg: msg}
}

// WrongShardOwner extracts the owning daemon's advertised URL from an
// ErrWrongShard error, or "" when the error is of another category (or
// carries no hint).
func WrongShardOwner(err error) string {
	var e *wrongShardError
	if errors.As(err, &e) {
		return e.owner
	}
	return ""
}

// Kind selects the target topology of an instance.
type Kind string

// The supported topologies: the paper's two headline constructions.
const (
	KindDeBruijn Kind = "debruijn" // target B_{m,h}, host B^k_{m,h}
	KindShuffle  Kind = "shuffle"  // target SE_h, host B^k_{2,h} via psi
)

// Spec describes the fault-tolerant network an instance runs.
type Spec struct {
	Kind Kind `json:"kind"`
	M    int  `json:"m,omitempty"` // base (de Bruijn only; shuffle is base 2)
	H    int  `json:"h"`           // digits / bits
	K    int  `json:"k"`           // fault budget
}

// Validate checks the spec against the paper's preconditions.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindDeBruijn:
		return ft.Params{M: s.M, H: s.H, K: s.K}.Validate()
	case KindShuffle:
		if s.M != 0 && s.M != 2 {
			return fmt.Errorf("fleet: shuffle-exchange is base 2, got m=%d", s.M)
		}
		return ft.SEParams{H: s.H, K: s.K}.Validate()
	default:
		return fmt.Errorf("fleet: unknown kind %q (want %q or %q)",
			s.Kind, KindDeBruijn, KindShuffle)
	}
}

// EventKind is the type of a reconfiguration event.
type EventKind string

// The two event kinds an instance consumes.
const (
	EventFault  EventKind = "fault"  // host node stops working
	EventRepair EventKind = "repair" // host node returns to service
)

// Event is one fault or repair notification for a host node.
type Event struct {
	Kind EventKind `json:"kind"`
	Node int       `json:"node"` // host node id
}

// EventResult reports the instance state after an applied event or
// batch. The epoch counts atomic transitions: a batch of any size
// advances it by exactly one.
type EventResult struct {
	Epoch     uint64 `json:"epoch"`      // atomic transitions applied so far
	NumFaults int    `json:"num_faults"` // current fault count
	Budget    int    `json:"budget"`     // the instance's k
	Applied   int    `json:"applied"`    // events in the transition (1 for single events)
}

// RejectedStats breaks rejected events down by cause: budget-exceeded
// (the daemon enforcing the paper's k-fault precondition), state
// conflicts (double fault, repair of a healthy node), and invalid
// input (unknown node or event kind, empty batch).
type RejectedStats struct {
	Budget   uint64 `json:"budget"`
	Conflict uint64 `json:"conflict"`
	Invalid  uint64 `json:"invalid"`
}

// Total returns the sum over all causes.
func (r RejectedStats) Total() uint64 { return r.Budget + r.Conflict + r.Invalid }
