// Command ftnetd is the online reconfiguration daemon: it owns a fleet
// of fault-tolerant networks and serves the Manager API over HTTP/JSON.
//
// Usage:
//
//	ftnetd -addr :8080 -cache 4096
//
// API (see internal/fleet/api.go for the full route table):
//
//	POST   /v1/instances              {"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}
//	POST   /v1/instances/{id}/events  {"kind":"fault","node":3}  (or "repair")
//	POST   /v1/instances/{id}/events:batch  a whole fault burst, applied atomically
//	GET    /v1/instances/{id}/phi?x=3 where does target node 3 run now?
//	GET    /v1/stats, /healthz, /metrics
//
// Example session:
//
//	curl -s localhost:8080/v1/instances -d '{"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}'
//	curl -s localhost:8080/v1/instances/prod/events -d '{"kind":"fault","node":3}'
//	curl -s localhost:8080/v1/instances/prod/phi?x=3
//	curl -s localhost:8080/v1/instances/prod/events:batch \
//	     -d '{"events":[{"kind":"repair","node":3},{"kind":"fault","node":7}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnet/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", fleet.DefaultCacheSize, "mapping cache capacity")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(fleet.NewManager(fleet.Options{CacheSize: *cacheSize})),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ftnetd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	log.Printf("ftnetd: serving the reconfiguration API on %s", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// newServer builds the daemon's handler; split from main so the
// end-to-end test serves the exact handler the binary runs.
func newServer(mgr *fleet.Manager) http.Handler {
	return fleet.NewHTTPHandler(mgr)
}
