// Package hypercube provides the comparison topologies from the paper's
// introduction: the hypercube Q_d (whose degree grows with machine size,
// the problem motivating constant-degree networks) and the
// cube-connected cycles CCC_d of Preparata–Vuillemin (ref [11], the
// other constant-degree alternative the paper names alongside
// shuffle-exchange and de Bruijn).
//
// These exist to reproduce the intro's argument quantitatively: degree
// tables across machine sizes, and Ascend-class workload costs on each
// topology (hypercube: h cycles; shuffle-exchange emulation: 2h cycles —
// the "small constant factor slowdown").
package hypercube

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// New returns the hypercube Q_d: 2^d nodes, node x adjacent to x^(2^i)
// for every dimension i. Degree is exactly d.
func New(d int) (*graph.Graph, error) {
	if d < 1 {
		return nil, fmt.Errorf("hypercube: dimension d=%d must be >= 1", d)
	}
	n, err := num.IPow(2, d)
	if err != nil {
		return nil, fmt.Errorf("hypercube: %v", err)
	}
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		for i := 0; i < d; i++ {
			b.AddEdge(x, x^(1<<i))
		}
	}
	return b.Build(), nil
}

// MustNew is New that panics on error.
func MustNew(d int) *graph.Graph {
	g, err := New(d)
	if err != nil {
		panic(err)
	}
	return g
}

// CCCNode identifies a cube-connected cycles node: cube position w
// (a d-bit corner) and cycle position i (which dimension's port).
type CCCNode struct {
	W int // hypercube corner, 0 <= W < 2^d
	I int // position on the corner's cycle, 0 <= I < d
}

// CCCIndex flattens a CCCNode to an integer id: w*d + i.
func CCCIndex(n CCCNode, d int) int { return n.W*d + n.I }

// CCCNodeOf inverts CCCIndex.
func CCCNodeOf(id, d int) CCCNode { return CCCNode{W: id / d, I: id % d} }

// NewCCC returns the cube-connected cycles network CCC_d: each hypercube
// corner is replaced by a d-cycle, position i of corner w connects to
// position i of corner w^(2^i) (the "cube" edge) plus its two cycle
// neighbors. Degree 3 for d >= 3.
func NewCCC(d int) (*graph.Graph, error) {
	if d < 1 {
		return nil, fmt.Errorf("hypercube: CCC dimension d=%d must be >= 1", d)
	}
	corners, err := num.IPow(2, d)
	if err != nil {
		return nil, fmt.Errorf("hypercube: %v", err)
	}
	b := graph.NewBuilder(corners * d)
	for w := 0; w < corners; w++ {
		for i := 0; i < d; i++ {
			id := CCCIndex(CCCNode{W: w, I: i}, d)
			// Cycle edges (self-loops for d=1, multi-edge for d=2 are
			// collapsed by the builder).
			b.AddEdge(id, CCCIndex(CCCNode{W: w, I: (i + 1) % d}, d))
			// Cube edge along dimension i.
			b.AddEdge(id, CCCIndex(CCCNode{W: w ^ (1 << i), I: i}, d))
		}
	}
	return b.Build(), nil
}

// MustNewCCC is NewCCC that panics on error.
func MustNewCCC(d int) *graph.Graph {
	g, err := NewCCC(d)
	if err != nil {
		panic(err)
	}
	return g
}

// AscendCycles returns the communication cycles an Ascend-class sweep
// costs on each topology for a 2^h-node logical problem, per the
// standard emulations: hypercube h (one dimension per cycle),
// de Bruijn h (one shift per cycle), shuffle-exchange 2h
// (shuffle + exchange per dimension), CCC 2h + O(h) (cycle rotation
// interleaved with cube edges; we report the 2h lower-order term plus h
// for the initial alignment, the textbook 3h bound).
type AscendCycles struct {
	Hypercube       int
	DeBruijn        int
	ShuffleExchange int
	CCC             int
}

// AscendCost returns the cycle counts for problem size 2^h.
func AscendCost(h int) AscendCycles {
	return AscendCycles{
		Hypercube:       h,
		DeBruijn:        h,
		ShuffleExchange: 2 * h,
		CCC:             3 * h,
	}
}

// RunAscendSum executes the hypercube-native Ascend global-sum directly
// on Q_d (each round every node combines with its dimension-i neighbor)
// and returns the per-node results and rounds used. It is the reference
// the shuffle-exchange emulation in package ascend is measured against.
func RunAscendSum(d int, vals []int64) ([]int64, int, error) {
	n, err := num.IPow(2, d)
	if err != nil || len(vals) != n {
		return nil, 0, fmt.Errorf("hypercube: need 2^%d values, got %d", d, len(vals))
	}
	data := make([]int64, n)
	copy(data, vals)
	for i := 0; i < d; i++ {
		bit := 1 << i
		for x := 0; x < n; x++ {
			if x&bit == 0 {
				s := data[x] + data[x^bit]
				data[x], data[x^bit] = s, s
			}
		}
	}
	return data, d, nil
}
