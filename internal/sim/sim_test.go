package sim

import (
	"math/rand"
	"testing"

	"ftnet/internal/bus"
	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestRunSingleMessage(t *testing.T) {
	m := NewPointToPoint(line(4), 1)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3}}}
	st, err := Run(m, msgs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.Cycles != 3 || st.TotalHops != 3 || st.Stalled {
		t.Errorf("stats = %v", st)
	}
	if !msgs[0].Delivered() || msgs[0].DeliveredAt != 3 {
		t.Errorf("message state wrong: %+v", msgs[0])
	}
}

func TestRunZeroHop(t *testing.T) {
	m := NewPointToPoint(line(2), 1)
	msgs := []*Message{{ID: 0, Route: []int{1}}}
	st, err := Run(m, msgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.Cycles != 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two messages over the same directed link need two cycles.
	m := NewPointToPoint(line(2), 2)
	msgs := []*Message{
		{ID: 0, Route: []int{0, 1}},
		{ID: 1, Route: []int{0, 1}},
	}
	st, err := Run(m, msgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 || st.Delivered != 2 {
		t.Errorf("stats = %v", st)
	}
}

func TestPortLimitSerializes(t *testing.T) {
	// One port, two different links from node 0: two cycles.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	msgs := []*Message{
		{ID: 0, Route: []int{0, 1}},
		{ID: 1, Route: []int{0, 2}},
	}
	m := NewPointToPoint(g, 1)
	st, err := Run(m, msgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 {
		t.Errorf("1-port cycles = %d, want 2", st.Cycles)
	}
	// With two ports both go out in one cycle.
	msgs2 := []*Message{
		{ID: 0, Route: []int{0, 1}},
		{ID: 1, Route: []int{0, 2}},
	}
	m2 := NewPointToPoint(g, 2)
	st2, err := Run(m2, msgs2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cycles != 1 {
		t.Errorf("2-port cycles = %d, want 1", st2.Cycles)
	}
}

func TestDeadNodeDropsTraffic(t *testing.T) {
	m := NewPointToPoint(line(4), 1)
	m.Kill(2)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3}}}
	st, err := Run(m, msgs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.Delivered != 0 {
		t.Errorf("stats = %v", st)
	}
	if !msgs[0].Dropped() {
		t.Error("message not marked dropped")
	}
}

func TestDeadSourceDropsImmediately(t *testing.T) {
	m := NewPointToPoint(line(3), 1)
	m.Kill(0)
	msgs := []*Message{{ID: 0, Route: []int{0, 1}}}
	st, err := Run(m, msgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.Cycles != 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestRunValidatesRoutes(t *testing.T) {
	m := NewPointToPoint(line(3), 1)
	if _, err := Run(m, []*Message{{ID: 0, Route: []int{0, 2}}}, 10); err == nil {
		t.Error("non-link route accepted")
	}
	if _, err := Run(m, []*Message{{ID: 0, Route: nil}}, 10); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := Run(&Machine{G: line(2), Dead: make([]bool, 2), Ports: 0}, nil, 10); err == nil {
		t.Error("ports=0 accepted")
	}
	if _, err := Run(&Machine{G: line(2), Dead: make([]bool, 2), Ports: 1, Mode: BusMode}, nil, 10); err == nil {
		t.Error("BusMode without BusFor accepted")
	}
	if _, err := Run(&Machine{G: line(2), Dead: nil, Ports: 1}, nil, 10); err == nil {
		t.Error("bad Dead length accepted")
	}
}

func TestMaxCyclesStalls(t *testing.T) {
	m := NewPointToPoint(line(5), 1)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3, 4}}}
	st, err := Run(m, msgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stalled || st.Delivered != 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestPermutationTrafficOnDeBruijn(t *testing.T) {
	p := debruijn.Params{M: 2, H: 5}
	g := debruijn.MustNew(p)
	msgs, err := Permutation(g.N(), func(x int) int { return (x + 7) % g.N() }, BFSRouter(g))
	if err != nil {
		t.Fatal(err)
	}
	m := NewPointToPoint(g, 2)
	st, err := Run(m, msgs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != g.N() || st.Stalled {
		t.Errorf("stats = %v", st)
	}
	if st.Cycles < p.H/2 {
		t.Errorf("suspiciously fast: %v", st)
	}
}

func TestRandomPairs(t *testing.T) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 4})
	rng := rand.New(rand.NewSource(4))
	msgs, err := RandomPairs(rng, g.N(), 40, BFSRouter(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 40 {
		t.Fatalf("msgs = %d", len(msgs))
	}
	st, err := Run(NewPointToPoint(g, 2), msgs, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 40 {
		t.Errorf("stats = %v", st)
	}
}

func TestBusSerializationFactorTwo(t *testing.T) {
	// Section V: with 2 injection ports, the bus machine is ~2x slower
	// on the all-successors burst; with 1 port there is no slowdown.
	p := ft.Params{M: 2, H: 4, K: 1}
	arch := bus.MustNew(p)
	g := arch.ConnectivityGraph()

	// Every node sends one value to each of 2 de Bruijn-successor
	// neighbors on its own bus (pick the first two distinct members).
	var hops [][2]int
	for i := 0; i < g.N(); i++ {
		seen := 0
		for _, v := range arch.Members(i) {
			if v != i && seen < 2 {
				hops = append(hops, [2]int{i, v})
				seen++
			}
		}
	}

	p2p := NewPointToPoint(g, 2)
	stP, err := Run(p2p, NeighborBurst(hops), 100)
	if err != nil {
		t.Fatal(err)
	}
	busM := NewBusMachine(arch, 2)
	stB, err := Run(busM, NeighborBurst(hops), 100)
	if err != nil {
		t.Fatal(err)
	}
	if stP.Cycles != 1 {
		t.Errorf("p2p 2-port burst cycles = %d, want 1", stP.Cycles)
	}
	if stB.Cycles != 2 {
		t.Errorf("bus 2-port burst cycles = %d, want 2", stB.Cycles)
	}

	// One port: both machines need 2 cycles — buses cost nothing.
	stP1, err := Run(NewPointToPoint(g, 1), NeighborBurst(hops), 100)
	if err != nil {
		t.Fatal(err)
	}
	busM1 := NewBusMachine(arch, 1)
	stB1, err := Run(busM1, NeighborBurst(hops), 100)
	if err != nil {
		t.Fatal(err)
	}
	if stP1.Cycles != stB1.Cycles {
		t.Errorf("1-port: p2p %d cycles vs bus %d — expected equal", stP1.Cycles, stB1.Cycles)
	}
}

func TestBusMachineRoutesArbitraryTraffic(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 1}
	arch := bus.MustNew(p)
	m := NewBusMachine(arch, 1)
	msgs, err := Permutation(m.G.N(), func(x int) int { return (x + 3) % m.G.N() }, BFSRouter(m.G))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(m, msgs, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != m.G.N() || st.Stalled {
		t.Errorf("stats = %v", st)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Cycles: 3, Delivered: 2}
	if s.String() == "" {
		t.Error("empty String")
	}
}
