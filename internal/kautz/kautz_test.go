package kautz

import (
	"math/rand"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func TestNodeCount(t *testing.T) {
	for _, p := range []Params{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 3}} {
		g, labels := MustNew(p)
		want := p.N()
		if g.N() != want || len(labels) != want {
			t.Errorf("%v: n = %d, want (m+1)m^(h-1) = %d", p, g.N(), want)
		}
	}
}

func TestDegreeAndNoSelfLoopPartners(t *testing.T) {
	for _, p := range []Params{{2, 3}, {3, 3}, {2, 5}} {
		g, _ := MustNew(p)
		if g.MaxDegree() > 2*p.M {
			t.Errorf("%v: degree %d > 2m = %d", p, g.MaxDegree(), 2*p.M)
		}
		if !g.IsConnected() {
			t.Errorf("%v: disconnected", p)
		}
	}
}

func TestDiameterAtMostH(t *testing.T) {
	for _, p := range []Params{{2, 3}, {3, 2}, {2, 4}} {
		g, _ := MustNew(p)
		if d := g.Diameter(); d > p.H || d < 1 {
			t.Errorf("%v: diameter %d", p, d)
		}
	}
}

func TestKautzStringsValid(t *testing.T) {
	p := Params{2, 4}
	for _, v := range Nodes(p) {
		d := num.MustToDigits(v, p.M+1, p.H)
		for i := 0; i+1 < len(d.D); i++ {
			if d.D[i] == d.D[i+1] {
				t.Fatalf("label %v has repeated consecutive digits", d)
			}
		}
	}
}

func TestKautzIsSubgraphOfDeBruijn(t *testing.T) {
	// Under its base-(m+1) labels, K(m,h) is a subgraph of B_{m+1,h} —
	// the relationship that lets B^k_{m+1,h} shelter it.
	for _, p := range []Params{{2, 3}, {3, 2}, {2, 4}} {
		g, labels := MustNew(p)
		db := debruijn.MustNew(debruijn.Params{M: p.M + 1, H: p.H})
		if err := graph.CheckEmbedding(g, db, labels); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestFTDeBruijnShelterKautz(t *testing.T) {
	// B^k_{m+1,h} tolerates k faults for the Kautz target too: compose
	// the label embedding with the reconfiguration map.
	rng := rand.New(rand.NewSource(4))
	p := Params{2, 3}
	kg, labels := MustNew(p)
	ftp := ft.Params{M: p.M + 1, H: p.H, K: 2}
	host := ft.MustNew(ftp)
	for trial := 0; trial < 30; trial++ {
		faults := num.RandomSubset(rng, ftp.NHost(), ftp.K)
		mp, err := ft.NewMapping(ftp.NTarget(), ftp.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		phi := make([]int, kg.N())
		for i, lbl := range labels {
			phi[i] = mp.Phi(lbl)
		}
		if err := graph.CheckEmbedding(kg, host, phi); err != nil {
			t.Fatalf("faults %v: %v", faults, err)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, p := range []Params{{1, 3}, {2, 1}, {2, 60}} {
		if p.Validate() == nil {
			t.Errorf("%v should be invalid", p)
		}
	}
	if (Params{2, 3}).String() != "K(2,3)" {
		t.Error("String wrong")
	}
}

func TestK23Known(t *testing.T) {
	// K(2,3): 12 nodes, degree at most 4, diameter 3, 2m-regular except
	// where shift-in/out coincide (none for Kautz: it IS 2m-regular
	// undirected up to coincidences). Check edge count: directed arcs
	// n*m = 24, all distinct and no self-loops; undirected count >= 12.
	p := Params{2, 3}
	g, _ := MustNew(p)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() < 12 || g.M() > 24 {
		t.Errorf("edges = %d", g.M())
	}
}
