// Command ftverify checks the (k, G)-tolerance of a fault-tolerant
// construction, exhaustively (every fault set) or by randomized
// adversarial sampling.
//
// Usage:
//
//	ftverify -target db -m 2 -h 4 -k 2 -mode exhaustive
//	ftverify -target se -h 5 -k 3 -mode random -trials 200
//	ftverify -target db -m 2 -h 4 -k 1 -faults 3,11   # one specific set
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/shuffle"
	"ftnet/internal/verify"
)

func main() {
	target := flag.String("target", "db", "target topology: db | se | se-natural")
	m := flag.Int("m", 2, "de Bruijn base (db target)")
	h := flag.Int("h", 4, "digits / bits")
	k := flag.Int("k", 1, "fault budget")
	mode := flag.String("mode", "random", "verification mode: exhaustive | random")
	trials := flag.Int("trials", 100, "trials per fault model (random mode)")
	seed := flag.Int64("seed", 1, "random seed")
	faultList := flag.String("faults", "", "comma-separated fault set to check instead")
	flag.Parse()

	tgt, host, mapper, err := setup(*target, *m, *h, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftverify: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("target: %d nodes, %d edges; host: %d nodes, degree %d\n",
		tgt.N(), tgt.M(), host.N(), host.MaxDegree())

	if *faultList != "" {
		faults, err := parseFaults(*faultList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftverify: %v\n", err)
			os.Exit(1)
		}
		if err := verify.CheckOnce(tgt, host, faults, mapper); err != nil {
			fmt.Fprintf(os.Stderr, "ftverify: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok: fault set %v tolerated\n", faults)
		return
	}

	var rep verify.Report
	switch *mode {
	case "exhaustive":
		rep = verify.Exhaustive(tgt, host, *k, mapper)
	case "random":
		rep = verify.Randomized(tgt, host, *k, mapper, *trials, *seed, nil)
	default:
		fmt.Fprintf(os.Stderr, "ftverify: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	fmt.Println(rep)
	if !rep.Ok() {
		os.Exit(1)
	}
}

func setup(target string, m, h, k int) (*graph.Graph, *graph.Graph, verify.Mapper, error) {
	switch target {
	case "db":
		p := ft.Params{M: m, H: h, K: k}
		host, err := ft.New(p)
		if err != nil {
			return nil, nil, nil, err
		}
		tgt, err := debruijn.New(p.Target())
		if err != nil {
			return nil, nil, nil, err
		}
		mapper := func(faults, buf []int) ([]int, error) {
			mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				return nil, err
			}
			return mp.AppendPhi(buf[:0]), nil
		}
		return tgt, host, mapper, nil
	case "se":
		p := ft.SEParams{H: h, K: k}
		host, psi, err := ft.NewSEViaDB(p)
		if err != nil {
			return nil, nil, nil, err
		}
		tgt, err := shuffle.New(shuffle.Params{H: h})
		if err != nil {
			return nil, nil, nil, err
		}
		mapper := func(faults, _ []int) ([]int, error) { return ft.SEMapViaDB(p, psi, faults) }
		return tgt, host, mapper, nil
	case "se-natural":
		p := ft.SEParams{H: h, K: k}
		host, err := ft.NewSENatural(p)
		if err != nil {
			return nil, nil, nil, err
		}
		tgt, err := shuffle.New(shuffle.Params{H: h})
		if err != nil {
			return nil, nil, nil, err
		}
		mapper := func(faults, buf []int) ([]int, error) {
			mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				return nil, err
			}
			return mp.AppendPhi(buf[:0]), nil
		}
		return tgt, host, mapper, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown target %q", target)
	}
}

func parseFaults(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
