package loadgen

import (
	"net"
	"net/http/httptest"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/wire"
)

// startRPC serves the binary RPC plane over mgr on a loopback port for
// the duration of the test.
func startRPC(t *testing.T, mgr *fleet.Manager) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(mgr, wire.ServerOptions{Metrics: mgr.Metrics()})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestRunRPCTransport drives the mixed scenario with the hot path on
// the binary RPC plane (control plane on JSON) and requires a clean
// run: zero transport errors, zero unexpected statuses, lookups
// resolved in vectorized batches.
func TestRunRPCTransport(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()
	rpcAddr := startRPC(t, mgr)

	res, err := Run(Config{
		Addr:           ts.URL,
		Instances:      2,
		Spec:           fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
		Workers:        4,
		Requests:       400,
		Scenario:       Mixed,
		Seed:           7,
		IDPrefix:       "t-rpc",
		RPCAddr:        rpcAddr,
		RPCLookupBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RPC {
		t.Fatal("Result.RPC not set on an RPC-plane run")
	}
	if res.Transport != 0 {
		t.Fatalf("%d transport errors on a healthy loopback server", res.Transport)
	}
	if res.Errors != 0 {
		t.Fatalf("%d unexpected-status errors", res.Errors)
	}
	if res.Lookups == 0 || res.Batches == 0 {
		t.Fatalf("mixed RPC run drove no traffic: %+v", res)
	}
	// Vectorized reads: each lookup op resolves RPCLookupBatch targets,
	// so resolved lookups must be a multiple of the batch width.
	if res.Lookups%8 != 0 {
		t.Errorf("lookups %d not a multiple of the batch width 8", res.Lookups)
	}
	if len(res.LookupLatencies) == 0 {
		t.Error("no lookup latency samples recorded")
	}
	if res.LookupThroughput() <= 0 {
		t.Errorf("non-positive lookup throughput %v", res.LookupThroughput())
	}

	// The server-side RPC histograms landed in the manager's registry,
	// so /v1/stats and /metrics cover the RPC plane too.
	exp := mgr.Metrics().Export()
	found := false
	for _, h := range exp.Histograms {
		if h.Name == "ftnet_rpc_op_seconds" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no ftnet_rpc_op_seconds samples in the manager registry")
	}

	// And the artifact builder picks up the RPC families.
	art := BuildServiceArtifact("mixed", &res, &exp, nil)
	var families []string
	for _, b := range art.Benchmarks {
		families = append(families, b.Family)
	}
	has := func(want string) bool {
		for _, f := range families {
			if f == want {
				return true
			}
		}
		return false
	}
	if !has("lookup_rpc_p99") || !has("lookups_per_sec") || !has("rpc_op_p99") {
		t.Errorf("artifact families %v missing the RPC entries", families)
	}
	for _, b := range art.Benchmarks {
		if b.Family == "lookups_per_sec" && b.Unit != "ops/s" {
			t.Errorf("lookups_per_sec unit %q, want ops/s", b.Unit)
		}
	}
}

// TestRunRPCScalarLookups pins the RPCLookupBatch<=1 path: scalar
// Lookup frames, still a clean run.
func TestRunRPCScalarLookups(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()
	rpcAddr := startRPC(t, mgr)

	res, err := Run(Config{
		Addr:           ts.URL,
		Instances:      1,
		Spec:           fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2},
		Workers:        2,
		Requests:       100,
		Scenario:       ReadHeavy,
		Seed:           3,
		IDPrefix:       "t-rpc1",
		RPCAddr:        rpcAddr,
		RPCLookupBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != 0 || res.Errors != 0 {
		t.Fatalf("scalar RPC run: %d transport, %d errors", res.Transport, res.Errors)
	}
	if res.Lookups == 0 {
		t.Fatal("read-heavy run resolved no lookups")
	}
}
