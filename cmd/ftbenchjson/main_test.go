package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ftnet/internal/fleet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkApplyScale/n=1024-8         	     100	       342.8 ns/op	     160 B/op	       4 allocs/op
BenchmarkApplyScale/n=1048576-8      	     100	       275.1 ns/op	     160 B/op	       4 allocs/op
BenchmarkLookupScale/n=1024-8        	     100	        10.87 ns/op	       0 B/op	       0 allocs/op
BenchmarkLookupScale/n=1048576-8     	     100	         9.700 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheGetSharded-8           	     500	       120.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	ftnet/internal/fleet	0.007s
`

func TestParse(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if art.Pkg != "ftnet/internal/fleet" {
		t.Errorf("pkg = %q", art.Pkg)
	}
	if !strings.Contains(art.CPU, "Xeon") {
		t.Errorf("cpu = %q", art.CPU)
	}
	if len(art.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(art.Benchmarks))
	}
	b := art.Benchmarks[0]
	if b.Name != "ApplyScale/n=1024" || b.Family != "ApplyScale" || b.N != 1024 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Iterations != 100 || b.NsPerOp != 342.8 || b.BytesPerOp != 160 || b.AllocsPerOp != 4 {
		t.Errorf("first benchmark values = %+v", b)
	}
	last := art.Benchmarks[4]
	if last.Name != "CacheGetSharded" || last.N != 0 {
		t.Errorf("non-scale benchmark = %+v", last)
	}
}

func TestCheckAllocsFlatPasses(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkAllocsFlat(art.Benchmarks); err != nil {
		t.Errorf("flat allocations rejected: %v", err)
	}
}

func TestCheckAllocsFlatCatchesScaling(t *testing.T) {
	scaling := `BenchmarkApplyScale/n=1024-8     100  342.8 ns/op  160 B/op  4 allocs/op
BenchmarkApplyScale/n=1048576-8  100  99999 ns/op  8388608 B/op  12 allocs/op
`
	art, err := parse(strings.NewReader(scaling))
	if err != nil {
		t.Fatal(err)
	}
	err = checkAllocsFlat(art.Benchmarks)
	if err == nil {
		t.Fatal("O(n) allocation growth passed the check")
	}
	if !strings.Contains(err.Error(), "ApplyScale") {
		t.Errorf("error does not name the family: %v", err)
	}
}

func TestCheckAllocsFlatNeedsScaleData(t *testing.T) {
	art, err := parse(strings.NewReader("BenchmarkFoo-8  100  10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkAllocsFlat(art.Benchmarks); err == nil {
		t.Error("check passed with no /n= alloc data to check")
	}
}
