package graph

import (
	"math/rand"
	"testing"
)

func TestEdgeConnectivityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"P5", path(5), 1},
		{"C6", cycle(6), 2},
		{"K5", complete(5), 4},
		{"single", NewBuilder(1).Build(), 0},
	}
	for _, c := range cases {
		if got := EdgeConnectivity(c.g); got != c.want {
			t.Errorf("%s: lambda = %d, want %d", c.name, got, c.want)
		}
	}
	// Disconnected.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	if EdgeConnectivity(b.Build()) != 0 {
		t.Error("disconnected graph should have lambda 0")
	}
}

func TestVertexConnectivityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"P5", path(5), 1},
		{"C6", cycle(6), 2},
		{"K5", complete(5), 4},
		{"K4", complete(4), 3},
	}
	for _, c := range cases {
		if got := VertexConnectivity(c.g); got != c.want {
			t.Errorf("%s: kappa = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestConnectivityBridgeGraph(t *testing.T) {
	// Two triangles joined by a single node (cut vertex): kappa=1.
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 4)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	if got := VertexConnectivity(g); got != 1 {
		t.Errorf("cut-vertex graph kappa = %d, want 1", got)
	}
	if got := EdgeConnectivity(g); got != 1 {
		t.Errorf("bridge graph lambda = %d, want 1", got)
	}
}

func TestWhitneyInequalities(t *testing.T) {
	// kappa <= lambda <= min degree, on random connected graphs.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(12) + 4
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(i, rng.Intn(i))
		}
		for e := 0; e < n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		k := VertexConnectivity(g)
		l := EdgeConnectivity(g)
		if k > l || l > g.MinDegree() {
			t.Fatalf("Whitney violated: kappa=%d lambda=%d mindeg=%d on %v", k, l, g.MinDegree(), g)
		}
		// Removing any kappa-1 nodes must leave the graph connected.
		if k >= 2 {
			for probe := 0; probe < 5; probe++ {
				drop := make([]int, 0, k-1)
				seen := map[int]bool{}
				for len(drop) < k-1 {
					v := rng.Intn(n)
					if !seen[v] {
						seen[v] = true
						drop = append(drop, v)
					}
				}
				sub, _, err := g.InducedByExclusion(drop)
				if err != nil {
					t.Fatal(err)
				}
				if !sub.IsConnected() {
					t.Fatalf("removing %v (< kappa=%d) disconnected the graph", drop, k)
				}
			}
		}
	}
}

func TestVertexConnectivityWitness(t *testing.T) {
	// There must exist a set of exactly kappa nodes that disconnects C6:
	// removing two opposite nodes splits the cycle.
	g := cycle(6)
	sub, _, err := g.InducedByExclusion([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.IsConnected() {
		t.Error("removing opposite nodes of C6 should disconnect it")
	}
}
